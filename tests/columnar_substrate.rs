//! Columnar-substrate equivalence: the dimension-major `Table` layout with
//! its narrow (u8/u16/u32) columns and packed-row companion, the
//! kernel-backed `ClosedInfo::for_group` constructor, and the partitioner's
//! lane-interleaved counting-sort passes must all be invisible in the
//! results — every algorithm, every thread count, every workload shape,
//! every storage width.

use c_cubing::prelude::*;
use ccube_core::closedness::ClosedInfo;
use ccube_core::partition::Partitioner;
use ccube_core::sink::collect_counts;
use ccube_core::{DimMask, TupleId, Width};
use proptest::prelude::*;

/// Small random table plus a random subset of its tuple IDs (unsorted, no
/// duplicates — the shape cubers hand to `for_group`).
fn arb_table_and_tids() -> impl Strategy<Value = (Table, Vec<TupleId>)> {
    (1usize..=5, 2u32..=5).prop_flat_map(|(dims, card)| {
        proptest::collection::vec(proptest::collection::vec(0..card, dims), 1..60).prop_flat_map(
            move |rows| {
                let n = rows.len();
                proptest::collection::vec(any::<u32>(), 1..=n).prop_map(move |picks| {
                    let mut b = TableBuilder::new(dims).cards(vec![card; dims]);
                    for r in &rows {
                        b.push_row(r);
                    }
                    let table = b.build().expect("valid random table");
                    // Distinct tids from the random picks (first-wins order).
                    let mut seen = vec![false; n];
                    let mut tids = Vec::new();
                    for p in picks {
                        let t = (p as usize) % n;
                        if !seen[t] {
                            seen[t] = true;
                            tids.push(t as TupleId);
                        }
                    }
                    (table, tids)
                })
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `ClosedInfo::for_group` (column-at-a-time, 8-wide fold, early exit)
    /// equals the fold of `for_tuple`/`merge_tuple` over arbitrary tables
    /// and tid subsets — the contract every cuber now relies on.
    #[test]
    fn for_group_equals_merge_tuple_fold(case in arb_table_and_tids()) {
        let (table, tids) = case;
        let (&first, rest) = tids.split_first().expect("non-empty");
        let mut want = ClosedInfo::for_tuple(&table, first);
        for &t in rest {
            want.merge_tuple(&table, t);
        }
        prop_assert_eq!(ClosedInfo::for_group(&table, &tids), Some(want));
    }

    /// The packed/word-parallel `for_group` equals the retained scalar
    /// fallback on arbitrary tables and tid subsets — including duplicated
    /// tids, which some callers pass.
    #[test]
    fn for_group_kernels_equal_scalar(case in arb_table_and_tids()) {
        let (table, mut tids) = case;
        // Duplicate a prefix to exercise repeated-tid inputs.
        let dup: Vec<TupleId> = tids.iter().take(3).copied().collect();
        tids.extend(dup);
        prop_assert_eq!(
            ClosedInfo::for_group(&table, &tids),
            ClosedInfo::for_group_scalar(&table, &tids)
        );
        // The widened (all-u32, no packed rows) table agrees too.
        prop_assert_eq!(
            ClosedInfo::for_group(&table.widened(), &tids),
            ClosedInfo::for_group(&table, &tids)
        );
    }

    /// Narrowed columns round-trip: `build()`'s width choice is invisible
    /// through every accessor — `value`, `row`, `col`, `freq`, `eq_mask` —
    /// against the widened all-`u32` reference. Cardinalities straddle the
    /// u8/u16 boundary (256/257) so both narrow widths are exercised.
    #[test]
    fn narrow_columns_round_trip(
        rows in proptest::collection::vec(
            (0u32..256, 0u32..257, 0u32..5), 1..40),
    ) {
        let mut b = TableBuilder::new(3).cards(vec![256, 257, 5]);
        for &(a, bb, c) in &rows {
            b.push_row(&[a, bb, c]);
        }
        let t = b.build().expect("valid table");
        prop_assert_eq!(t.width(0), Width::U8);
        prop_assert_eq!(t.width(1), Width::U16);
        prop_assert_eq!(t.width(2), Width::U8);
        let w = t.widened();
        for d in 0..t.dims() {
            prop_assert_eq!(w.width(d), Width::U32);
            prop_assert_eq!(t.col(d).to_u32_vec(), w.col(d).to_u32_vec());
            prop_assert_eq!(t.freq(d), w.freq(d));
        }
        for tid in 0..rows.len() as TupleId {
            prop_assert_eq!(t.row(tid), w.row(tid));
            for d in 0..t.dims() {
                prop_assert_eq!(t.value(tid, d), w.value(tid, d));
            }
        }
    }

    /// Mask survival (`eq_mask` / `eq_mask_on`) agrees between the packed
    /// SWAR path and the per-column probe path, for every tuple pair and a
    /// sweep of `need` masks.
    #[test]
    fn mask_survival_packed_equals_probe(case in arb_table_and_tids()) {
        let (table, tids) = case;
        let w = table.widened();
        for &a in tids.iter().take(6) {
            for &b in tids.iter().take(6) {
                prop_assert_eq!(table.eq_mask(a, b), w.eq_mask(a, b));
                for need in [
                    DimMask::EMPTY,
                    DimMask::single(0),
                    DimMask::all(table.dims()),
                    DimMask::all(table.dims()) ^ DimMask::single(table.dims() - 1),
                ] {
                    prop_assert_eq!(table.eq_mask_on(a, b, need), w.eq_mask_on(a, b, need));
                }
            }
        }
    }

    /// The sparse-reset partitioner is call-for-call identical to the dense
    /// default (groups and permutation), across repeated reuse of one
    /// instance — the invariant its deferred counter clearing relies on.
    #[test]
    fn sparse_partitioner_equals_dense(case in arb_table_and_tids()) {
        let (table, tids) = case;
        let mut dense = Partitioner::new();
        let mut sparse = Partitioner::with_sparse_reset();
        for d in 0..table.dims() {
            let mut a = tids.clone();
            let mut b = tids.clone();
            let (mut ga, mut gb) = (Vec::new(), Vec::new());
            dense.partition(&table, d, &mut a, &mut ga);
            sparse.partition(&table, d, &mut b, &mut gb);
            prop_assert_eq!(&ga, &gb, "groups diverged on dim {}", d);
            prop_assert_eq!(&a, &b, "permutation diverged on dim {}", d);
        }
    }
}

/// All 8 algorithms against the naive oracle and each other on one table:
/// the closed quartet agrees cell-for-cell, the iceberg quartet agrees
/// cell-for-cell, sequential and parallel runs are byte-identical.
fn assert_all_algorithms_agree(table: &Table, min_sups: &[u64], label: &str) {
    for &m in min_sups {
        let want_iceberg = ccube_core::naive::naive_iceberg_counts(table, m);
        let want_closed = ccube_core::naive::naive_closed_counts(table, m);
        for algo in Algorithm::ALL {
            let want = if algo.is_closed() {
                &want_closed
            } else {
                &want_iceberg
            };
            let got = collect_counts(|s| algo.run(table, m, s));
            assert_eq!(&got, want, "{algo} != naive on {label} at min_sup={m}");
            for threads in [1usize, 2, 8] {
                let got = collect_counts(|s| algo.run_parallel(table, m, threads, s).unwrap());
                assert_eq!(
                    &got, want,
                    "{algo} parallel({threads}) != naive on {label} at min_sup={m}"
                );
            }
        }
    }
}

/// The three checked-in BENCH_parallel.json workload shapes (uniform,
/// Zipf 1.5, Zipf 2.0 — T scaled down, D=8, C=100 scaled to keep the naive
/// oracle tractable), all 8 algorithms, threads {1, 2, 8}.
#[test]
fn all_algorithms_on_the_three_benchmark_shapes() {
    for (skew, seed) in [(1.0, 4), (1.5, 4), (2.0, 4)] {
        let t = SyntheticSpec::uniform(400, 5, 12, skew, seed).generate();
        assert_all_algorithms_agree(&t, &[1, 8], &format!("zipf {skew}"));
    }
}

/// All 8 algorithms are width-oblivious: a narrow table (u8/u16 columns,
/// packed rows where eligible) and its widened all-`u32` twin produce
/// byte-identical cubes at every thread count — the dispatch layer cannot
/// leak into results.
#[test]
fn all_algorithms_agree_across_widths() {
    // Card 12 -> u8 columns + packed rows; card 300 -> u16 columns.
    for (card, label) in [(12u32, "u8/packed"), (300, "u16")] {
        let narrow = SyntheticSpec::uniform(400, 4, card, 1.5, 9).generate();
        let wide = narrow.widened();
        assert!(wide.packed_rows().is_none());
        for m in [1u64, 8] {
            for algo in Algorithm::ALL {
                let want = collect_counts(|s| algo.run(&wide, m, s));
                let got = collect_counts(|s| algo.run(&narrow, m, s));
                assert_eq!(got, want, "{algo} width-sensitive on {label}");
                for threads in [1usize, 2, 8] {
                    let got =
                        collect_counts(|s| algo.run_parallel(&narrow, m, threads, s).unwrap());
                    assert_eq!(
                        got, want,
                        "{algo} parallel({threads}) width-sensitive on {label}"
                    );
                }
            }
        }
    }
}

/// The lane-interleaved counting-sort passes equal a stable reference sort
/// on the adversarial shapes: cardinality exactly at the u8/u16 boundary
/// (256/257), a single-value dimension (one group, scatter skipped), and an
/// empty slice.
#[test]
fn sort_pass_adversarial_shapes() {
    let n: u32 = 3000; // above the lane gate, not divisible by 4
    let mut b = TableBuilder::new(3).cards(vec![256, 257, 1]);
    for i in 0..n {
        b.push_row(&[(i * 7) % 256, (i * i + 3) % 257, 0]);
    }
    let t = b.build().unwrap();
    assert_eq!(t.width(0), Width::U8);
    assert_eq!(t.width(1), Width::U16);
    for sparse in [false, true] {
        let mut p = if sparse {
            Partitioner::with_sparse_reset()
        } else {
            Partitioner::new()
        };
        for d in 0..3 {
            let mut tids: Vec<TupleId> = (0..n).rev().collect();
            p.sort_pass(t.col(d), t.card(d), &mut tids);
            let mut want: Vec<TupleId> = (0..n).rev().collect();
            want.sort_by_key(|&tid| (t.value(tid, d), std::cmp::Reverse(tid)));
            assert_eq!(tids, want, "dim {d} sparse={sparse}");
            // Partition over the sorted slice: same groups, order untouched.
            let mut groups = Vec::new();
            let before = tids.clone();
            p.partition(&t, d, &mut tids, &mut groups);
            assert_eq!(tids, before, "partition after sort must be stable");
            assert_eq!(groups.iter().map(|g| g.len()).sum::<u32>(), n);
            if d == 2 {
                assert_eq!(groups.len(), 1, "single-value dim is one group");
            }
        }
        // Empty slice: no groups, no panic, invariants intact.
        let mut empty: Vec<TupleId> = Vec::new();
        let mut groups = Vec::new();
        p.partition(&t, 0, &mut empty, &mut groups);
        assert!(groups.is_empty());
        p.sort_pass(t.col(1), t.card(1), &mut empty);
    }
}

/// Carried-dimension views (the engine's closed-shard shape) work columnar:
/// group-wise closedness over a view must see carried dimensions.
#[test]
fn for_group_spans_carried_view_dimensions() {
    let t = TableBuilder::new(3)
        .row(&[1, 0, 5])
        .row(&[1, 1, 5])
        .row(&[1, 0, 2])
        .build()
        .unwrap();
    // View over all tuples, dims reordered (1, 2 group-by; 0 carried).
    let v = t.view(&[0, 1, 2], &[1, 2, 0], 2);
    let info = ClosedInfo::for_group(&v, &[0, 1, 2]).unwrap();
    // Carried dim (view dim 2 = base dim 0) is uniform; group-by dims not.
    assert!(info.mask.contains(2));
    assert!(!info.mask.contains(0));
    assert!(!info.mask.contains(1));
    assert_eq!(info.rep, 0);
}
