//! Property-based tests of the paper's formal claims, driven by proptest.
//!
//! Random tables are drawn with small dimensions/cardinalities so the naive
//! oracle stays fast, then the core invariants are checked:
//!
//! * Lemma 3 — the Closed Mask merge is exact under any partition of the
//!   tuple group;
//! * Definition 9 / Lemma 4 — the mask test agrees with the definitional
//!   closedness check;
//! * closed cubes are lossless (every iceberg cell recoverable);
//! * all four closed cubers agree with the oracle on arbitrary data;
//! * closure is idempotent and monotone.

use c_cubing::prelude::*;
use ccube_core::closedness::ClosedInfo;
use ccube_core::naive::{self, naive_closed_counts, naive_iceberg_counts};
use ccube_core::sink::collect_counts;
use proptest::prelude::*;

/// Strategy: a random encoded table with 2–5 dims, cards 2–6, 1–60 rows.
fn arb_table() -> impl Strategy<Value = Table> {
    (2usize..=5, 2u32..=6).prop_flat_map(|(dims, card)| {
        proptest::collection::vec(proptest::collection::vec(0..card, dims), 1..60).prop_map(
            move |rows| {
                let mut b = TableBuilder::new(dims).cards(vec![card; dims]);
                for r in &rows {
                    b.push_row(r);
                }
                b.build().expect("valid random table")
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn closed_mask_merge_is_exact_under_any_partition(
        table in arb_table(),
        split_seed in any::<u64>(),
    ) {
        // Split the tuple set pseudo-randomly into two parts; merging their
        // summaries must equal the direct summary (Lemma 3).
        let n = table.rows() as u32;
        prop_assume!(n >= 2);
        let mut left = Vec::new();
        let mut right = Vec::new();
        for t in 0..n {
            if (split_seed >> (t % 64)) & 1 == 0 { left.push(t) } else { right.push(t) }
        }
        prop_assume!(!left.is_empty() && !right.is_empty());
        let mut merged = ClosedInfo::of_group(&table, &left).unwrap();
        merged.merge(&table, &ClosedInfo::of_group(&table, &right).unwrap());
        let all: Vec<u32> = (0..n).collect();
        prop_assert_eq!(merged, ClosedInfo::of_group(&table, &all).unwrap());
    }

    #[test]
    fn mask_test_agrees_with_definitional_closedness(table in arb_table()) {
        // For every iceberg cell: Definition 9's mask test == closure test.
        for (cell, _) in naive_iceberg_counts(&table, 1) {
            let tids = cell.tuple_ids(&table);
            let info = ClosedInfo::of_group(&table, &tids).unwrap();
            prop_assert_eq!(
                info.is_closed(cell.all_mask()),
                naive::is_closed(&table, &cell),
                "cell {}", cell
            );
        }
    }

    #[test]
    fn all_closed_cubers_match_oracle(table in arb_table(), min_sup in 1u64..6) {
        let want = naive_closed_counts(&table, min_sup);
        for algo in [
            Algorithm::QcDfs,
            Algorithm::CCubingMm,
            Algorithm::CCubingStar,
            Algorithm::CCubingStarArray,
        ] {
            let got = collect_counts(|s| algo.run(&table, min_sup, s));
            prop_assert_eq!(&got, &want, "{} at min_sup={}", algo, min_sup);
        }
    }

    #[test]
    fn iceberg_cubers_match_oracle(table in arb_table(), min_sup in 1u64..6) {
        let want = naive_iceberg_counts(&table, min_sup);
        for algo in [Algorithm::Buc, Algorithm::Mm, Algorithm::Star, Algorithm::StarArray] {
            let got = collect_counts(|s| algo.run(&table, min_sup, s));
            prop_assert_eq!(&got, &want, "{} at min_sup={}", algo, min_sup);
        }
    }

    #[test]
    fn closed_cube_is_lossless(table in arb_table(), min_sup in 1u64..4) {
        let closed: Vec<(Cell, u64)> =
            naive_closed_counts(&table, min_sup).into_iter().collect();
        let cube = ClosedCube::new(table.dims(), min_sup, closed);
        for (cell, count) in naive_iceberg_counts(&table, min_sup) {
            prop_assert_eq!(cube.query(&cell), Some(count), "cell {}", cell);
        }
    }

    #[test]
    fn closure_is_idempotent_and_extends(table in arb_table()) {
        // Probe with projections of actual tuples so groups are non-empty.
        let probe_dims: DimMask = [0usize].into_iter().collect();
        for t in 0..table.rows().min(8) as u32 {
            let cell = Cell::project(&table, t, probe_dims);
            let c1 = naive::closure(&table, &cell).unwrap();
            prop_assert!(cell.generalizes(&c1));
            let c2 = naive::closure(&table, &c1).unwrap();
            prop_assert_eq!(&c1, &c2, "closure not idempotent");
            prop_assert_eq!(naive::cell_count(&table, &cell), naive::cell_count(&table, &c1));
        }
    }

    #[test]
    fn lemma1_closed_cells_on_count_cover_all_measures(table in arb_table()) {
        // Lemma 1: cells covered on count have identical tuple groups, so a
        // covered cell's sum-measure equals its cover's. Verify via the
        // closure relation on a handful of cells.
        for (cell, _) in naive_iceberg_counts(&table, 1).into_iter().take(20) {
            let closure = naive::closure(&table, &cell).unwrap();
            let a = cell.tuple_ids(&table);
            let b = closure.tuple_ids(&table);
            prop_assert_eq!(a, b, "cover must preserve the tuple group");
        }
    }

    #[test]
    fn dimension_permutation_invariance(table in arb_table(), min_sup in 1u64..4) {
        // Cubing a permuted table and unpermuting the cells must equal
        // cubing the original — the ordering freedom Fig 18 exploits.
        let perm: Vec<usize> = (0..table.dims()).rev().collect();
        let permuted = table.permute_dims(&perm).unwrap();
        let want = naive_closed_counts(&table, min_sup);
        let got_p = collect_counts(|s| Algorithm::CCubingStarArray.run(&permuted, min_sup, s));
        let got: std::collections::HashMap<Cell, u64> =
            got_p.into_iter().map(|(c, n)| (c.unpermute(&perm), n)).collect();
        prop_assert_eq!(got.len(), want.len());
        for (cell, count) in want {
            prop_assert_eq!(got.get(&cell), Some(&count), "cell {}", cell);
        }
    }
}
