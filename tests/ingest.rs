//! Incremental-ingest equivalence: a session that grows by `ingest` must be
//! indistinguishable from one built cold over the final rows — for every
//! algorithm, at every thread count, across multi-batch histories that
//! include empty batches and brand-new dimension values. The same bar holds
//! for the materialized closed cube: patching under inserts must land on
//! exactly the cells a cold `materialize` over the final table produces.

use c_cubing::prelude::*;
use ccube_core::fxhash::FxHashMap;
use proptest::prelude::*;

const THREADS: [usize; 3] = [1, 2, 8];

/// A random ingest history: a base table plus a sequence of row batches.
/// Batch values range past the base cardinality so histories regularly
/// introduce values (and therefore partition groups) the base never had;
/// empty batches appear naturally from the 0-length vec case.
fn arb_history() -> impl Strategy<Value = (usize, Vec<Vec<u32>>, Vec<Vec<u32>>)> {
    (2usize..=4).prop_flat_map(|dims| {
        let row = proptest::collection::vec(0u32..4, dims);
        let base = proptest::collection::vec(row, 8..40);
        let batch_row = proptest::collection::vec(0u32..7, dims);
        let batches = proptest::collection::vec(proptest::collection::vec(batch_row, 0..6), 1..4)
            .prop_map(|bs| bs.into_iter().flatten().collect::<Vec<_>>());
        (base, batches).prop_map(move |(base, flat)| (dims, base, flat))
    })
}

fn table_from(dims: usize, rows: &[Vec<u32>]) -> Table {
    let mut b = TableBuilder::new(dims);
    for r in rows {
        b.push_row(r);
    }
    b.build().expect("valid table")
}

fn query_counts(
    session: &mut CubeSession,
    algo: Algorithm,
    min_sup: u64,
    threads: usize,
) -> FxHashMap<Cell, u64> {
    let mut sink = CollectSink::default();
    session
        .query()
        .algorithm(algo)
        .min_sup(min_sup)
        .threads(threads)
        .run(&mut sink)
        .expect("query runs");
    sink.counts()
}

fn materialized_counts(session: &CubeSession, min_sup: u64) -> FxHashMap<Cell, u64> {
    let mut sink = CollectSink::default();
    session
        .query_materialized(min_sup, &mut sink)
        .expect("materialized serve");
    sink.counts()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The headline satellite: `ingest` then query equals rebuild then
    /// query — all algorithms, 1/2/8 threads, multi-batch histories with
    /// brand-new values and empty batches.
    #[test]
    fn ingest_then_query_equals_rebuild_then_query(case in arb_history()) {
        let (dims, base, appended) = case;
        let mut grown = CubeSession::new(table_from(dims, &base)).unwrap();
        // Ingest in three uneven chunks (the middle one is empty whenever
        // the history is short), so the patched artifacts cross several
        // incremental checkpoints rather than one big append.
        let cut_a = appended.len() / 3;
        let cut_b = (2 * appended.len()) / 3;
        for chunk in [&appended[..cut_a], &appended[cut_a..cut_b], &appended[cut_b..]] {
            let flat: Vec<u32> = chunk.iter().flatten().copied().collect();
            let stats = grown.ingest(&flat).expect("ingest");
            prop_assert_eq!(stats.rows, chunk.len());
        }

        let mut all_rows = base.clone();
        all_rows.extend(appended.iter().cloned());
        let mut rebuilt = CubeSession::new(table_from(dims, &all_rows)).unwrap();

        for algo in Algorithm::ALL {
            for min_sup in [1u64, 2] {
                for threads in THREADS {
                    let got = query_counts(&mut grown, algo, min_sup, threads);
                    let want = query_counts(&mut rebuilt, algo, min_sup, threads);
                    prop_assert_eq!(
                        &got, &want,
                        "{} threads={} min_sup={}: grown != rebuilt",
                        algo, threads, min_sup
                    );
                }
            }
        }
    }

    /// The materialized closed cube, patched batch by batch, must equal a
    /// cold `materialize` over the final table — cell for cell — and pure
    /// inserts must never retire a closed cell.
    #[test]
    fn patched_materialization_equals_cold_recompute(case in arb_history()) {
        let (dims, base, appended) = case;
        let mut grown = CubeSession::new(table_from(dims, &base)).unwrap();
        grown.materialize(2).expect("materialize");

        let mut all_rows = base.clone();
        let cut = appended.len() / 2;
        for chunk in [&appended[..cut], &appended[cut..]] {
            let flat: Vec<u32> = chunk.iter().flatten().copied().collect();
            let stats = grown.ingest(&flat).expect("ingest");
            all_rows.extend(chunk.iter().cloned());
            if !chunk.is_empty() {
                let delta = stats.materialization.expect("materialization maintained");
                prop_assert_eq!(delta.cells_removed, 0, "pure inserts retired a cell");
            }

            let mut cold = CubeSession::new(table_from(dims, &all_rows)).unwrap();
            cold.materialize(2).expect("cold materialize");
            for min_sup in [2u64, 4] {
                prop_assert_eq!(
                    materialized_counts(&grown, min_sup),
                    materialized_counts(&cold, min_sup),
                    "patched != cold at min_sup={}",
                    min_sup
                );
            }
        }

        // The materialization serves exactly the closed iceberg cube of
        // the grown table.
        let want = query_counts(&mut grown, Algorithm::CCubingStar, 2, 1);
        prop_assert_eq!(materialized_counts(&grown, 2), want);
    }
}

#[test]
fn empty_batches_between_queries_change_nothing() {
    let t = SyntheticSpec::uniform(300, 4, 6, 1.0, 7).generate();
    let mut session = CubeSession::new(t).unwrap();
    session.materialize(2).unwrap();
    let before = materialized_counts(&session, 2);
    for _ in 0..3 {
        let stats = session.ingest(&[]).unwrap();
        assert_eq!(stats.rows, 0);
    }
    assert_eq!(materialized_counts(&session, 2), before);
    assert_eq!(session.cache_stats().artifacts_rebuilt, 1);
}

#[test]
fn brand_new_dimension_values_join_the_cube() {
    // A batch whose every value is outside the base table's alphabet: the
    // first-dimension partition gains groups, the materialization gains
    // cells, and queries agree with a cold rebuild.
    let mut b = TableBuilder::new(3);
    for i in 0..30u32 {
        b.push_row(&[i % 3, i % 2, i % 5]);
    }
    let mut session = CubeSession::new(b.build().unwrap()).unwrap();
    session.materialize(2).unwrap();

    let batch = [40, 40, 40, 40, 40, 40, 41, 40, 40];
    session.ingest(&batch).unwrap();

    let mut cold_b = TableBuilder::new(3);
    for i in 0..30u32 {
        cold_b.push_row(&[i % 3, i % 2, i % 5]);
    }
    for row in batch.chunks(3) {
        cold_b.push_row(row);
    }
    let mut cold = CubeSession::new(cold_b.build().unwrap()).unwrap();
    cold.materialize(2).unwrap();

    assert_eq!(
        materialized_counts(&session, 2),
        materialized_counts(&cold, 2)
    );
    // The new value's own closed cell is present and counted.
    assert_eq!(
        materialized_counts(&session, 2)
            .iter()
            .filter(|(c, _)| c.values().contains(&40))
            .count(),
        materialized_counts(&cold, 2)
            .iter()
            .filter(|(c, _)| c.values().contains(&40))
            .count()
    );
    for threads in THREADS {
        assert_eq!(
            query_counts(&mut session, Algorithm::CCubingStar, 2, threads),
            query_counts(&mut cold, Algorithm::CCubingStar, 2, threads),
        );
    }
}
