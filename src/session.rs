//! The planner-backed query API: [`CubeSession`] / [`CubeQuery`] /
//! [`CellStream`].
//!
//! A **session** owns one fact table plus the per-table artifacts every
//! query used to recompute from scratch:
//!
//! * measured [`TableStats`] (observed cardinalities, skew, dependence) —
//!   the planner input of [`recommend`], built once at session creation;
//! * the stats-informed sharding order
//!   ([`TableStats::recommend_ordering`]), its permutation, and the
//!   counting-sort partition along its leading dimension — handed to the
//!   parallel engine as a [`ccube_engine::WarmStart`] so warm engine
//!   queries skip the per-query permutation scan and level-0 partition
//!   pass, and doubling as the fast path for `slice(leading, v)`
//!   selections;
//! * lazily, on the first StarArray-family query, the lexicographically
//!   radix-sorted tuple pool ([`ccube_star::lex_sorted_pool`]) the StarArray
//!   construction starts from (it depends only on the table, not on
//!   `min_sup`).
//!
//! A **query** composes, in any order:
//!
//! * `dims(mask)` — project onto a subset of the group-by dimensions;
//! * `slice(d, v)` / `dice(d, values)` — select tuples by dimension value
//!   (AND across calls, OR within one `dice` value list);
//! * `min_sup(k)` — the iceberg threshold (default 1);
//! * `closed(bool)` — closed cube vs plain iceberg cube, **orthogonal** to
//!   the algorithm choice (the planner maps an explicit algorithm to its
//!   family counterpart via [`Algorithm::with_closed`]; default closed);
//! * `measure(spec)` — complex measures riding along per Section 6.1;
//! * `algorithm(a)` — explicit algorithm, otherwise the planner picks via
//!   [`recommend`] over the session's cached stats;
//! * `threads(n)` / `engine(config)` — route through the partition-parallel
//!   engine instead of a plain sequential run;
//! * `deadline(d)` / `memory_budget(bytes)` — lifecycle limits enforced
//!   cooperatively during the run (see below);
//!
//! and terminates in [`CubeQuery::run`] (push into any
//! [`CellSink`](ccube_core::sink::CellSink)), [`CubeQuery::stats`] (counters
//! only), or [`CubeQuery::stream`] (a pull-based [`CellStream`] iterator
//! backed by a bounded channel, for serving code that cannot implement a
//! sink).
//!
//! ## Query lifecycle
//!
//! Every terminal is fallible: it arms a per-query
//! [`CancelToken`](ccube_core::lifecycle::CancelToken) (obtainable up front
//! via [`CubeQuery::handle`]) and returns a typed
//! [`CubeError`](ccube_core::CubeError) when the run is cancelled
//! ([`QueryHandle::cancel`], or dropping a [`CellStream`] mid-iteration),
//! exceeds its [`CubeQuery::deadline`], trips its
//! [`CubeQuery::memory_budget`], or panics internally
//! (`WorkerPanicked` — the panic never crosses the API). Builder misuse
//! (out-of-range dimensions, `min_sup(0)`, an empty projection) is recorded
//! in the builder and surfaces as a typed error at the terminal instead of
//! panicking. Output already pushed into a sink when an error surfaces is
//! partial and should be discarded. Cached session artifacts are untouched
//! by a failed run — a follow-up query on the same session reuses them.
//!
//! ## Subcube semantics
//!
//! Selections build a columnar *subtable* (one gather per kept column —
//! [`ccube_core::Table::view`]), and **closedness is computed relative to
//! that queried subtable**: after `slice(d, v)` the dimension `d` is uniform
//! over the subtable, so every closed cell binds `d = v` — exactly the
//! result of filtering the table by hand and cubing the rest. Projection
//! (`dims`) drops the other dimensions entirely; result cells are over the
//! kept dimensions in ascending original order.
//!
//! Cache reuse is **invisible**: repeated identical queries on one session
//! produce byte-identical output sequences (the cached artifacts are
//! by-construction equal to what a cold run computes).

use crate::{
    recommend, run_guarded, Algorithm, CubeRequest, EngineConfig, EngineStats, StatsState,
    TableStats,
};
use ccube_core::cell::Cell;
use ccube_core::lifecycle::{self, CancelToken};
use ccube_core::measure::{CountOnly, MeasureSpec};
use ccube_core::order::DimOrdering;
use ccube_core::partition::Group;
use ccube_core::sink::{CellBatch, CellSink, CountingSink};
use ccube_core::{CubeError, DimMask, Table, TupleId};
use ccube_delta::{DeltaPlan, DeltaStats, MaterializedCube};
use ccube_engine::{ChannelSink, WarmStart};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// How many times each cached artifact has been (re)built — all `1` after
/// any number of warm queries; the observable proof that cache reuse works.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// [`TableStats`] measurements performed (1 after session creation).
    pub stat_builds: u32,
    /// First-dimension counting-sort partitions performed.
    pub partition_builds: u32,
    /// StarArray lex-sorted pool constructions performed.
    pub pool_builds: u32,
    /// Tuple batches ingested ([`CubeSession::ingest`]).
    pub ingests: u32,
    /// Cached artifacts brought current by an incremental patch (stats
    /// extension, partition merge, pool merge, materialization splice) —
    /// ingest maintenance never bumps the `*_builds` counters above, which
    /// is the observable proof that ingest patches instead of rebuilding.
    pub artifacts_patched: u32,
    /// Artifacts rebuilt from scratch (cold [`CubeSession::materialize`]
    /// calls; never from ingest).
    pub artifacts_rebuilt: u32,
    /// Tuple groups re-summarized by materialized-cube maintenance
    /// ([`DeltaStats::groups_rechecked`] accumulated over builds and
    /// patches): after a small append this grows by far less than a cold
    /// build's group count.
    pub groups_rechecked: u64,
}

/// What one [`CubeSession::ingest`] call did: the append itself (rows,
/// column widening, packed-row refresh) plus which cached artifacts were
/// patched to stay current.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Tuples appended.
    pub rows: usize,
    /// Dimensions whose column was widened because a new value exceeded its
    /// previous natural width (see [`ccube_core::AppendReport::widened`]).
    pub widened: DimMask,
    /// Whether the packed-row fast-path buffer was refreshed rather than
    /// extended in place.
    pub repacked: bool,
    /// Whether the lazy StarArray lex-sorted pool existed and was
    /// merge-patched (false when it was never built — nothing to maintain).
    pub pool_patched: bool,
    /// Materialized-cube maintenance counters, when a materialization
    /// exists ([`CubeSession::materialize`]); `None` otherwise.
    pub materialization: Option<DeltaStats>,
}

/// A long-lived, per-table query context: owns the fact table and the cached
/// artifacts described above (see the crate-level quickstart), and hands out
/// [`CubeQuery`] builders via [`CubeSession::query`].
///
/// ```
/// use c_cubing::prelude::*;
///
/// let table = TableBuilder::new(3)
///     .row(&[0, 0, 0])
///     .row(&[0, 0, 1])
///     .row(&[1, 1, 0])
///     .build()
///     .unwrap();
/// let mut session = CubeSession::new(table).unwrap();
/// let mut sink = CollectSink::default();
/// session.query().min_sup(2).slice(0, 0).run(&mut sink).unwrap();
/// // Every closed cell of the sliced subtable binds dimension 0 = 0.
/// assert!(sink.cells.keys().all(|c| c.value(0) == 0));
/// ```
pub struct CubeSession {
    table: Arc<Table>,
    stats: TableStats,
    /// Raw accumulators behind `stats`, kept so ingest can extend the
    /// measurement over the appended rows instead of re-scanning.
    stats_state: StatsState,
    /// Cached engine sharding artifacts (built eagerly — the stats-informed
    /// permutation and the leading-dimension partition are both the
    /// engine's warm start and the `slice(leading, v)` fast path).
    prep: Arc<EnginePrep>,
    /// StarArray lex-sorted pool, built on the first StarArray-family query
    /// against the base table (min_sup-independent, so shared by all).
    star_pool: Option<Arc<Vec<TupleId>>>,
    /// Materialized closed cube, built by [`CubeSession::materialize`] and
    /// patched under ingest (see `crates/delta`).
    materialized: Option<MaterializedCube>,
    cache: CacheStats,
}

/// The session's cached sharding artifacts, shared (via `Arc`) with
/// in-flight query runs so a stream producer can outlive the borrow on the
/// session. Handed to the engine as a [`WarmStart`] on warm base-table
/// runs.
struct EnginePrep {
    /// The stats-informed ordering the permutation realizes.
    ordering: DimOrdering,
    /// Its dimension permutation over the session's table.
    perm: Vec<usize>,
    /// Level-0 partition along `perm[0]`: value-sorted tuple ids (ascending
    /// within each group — counting sort is stable) plus one group per
    /// distinct leading-dimension value.
    tids: Vec<TupleId>,
    groups: Vec<Group>,
}

impl EnginePrep {
    fn warm_start(&self) -> WarmStart<'_> {
        WarmStart {
            perm: &self.perm,
            tids: &self.tids,
            groups: &self.groups,
        }
    }
}

impl CubeSession {
    /// Open a session over `table`, measuring its [`TableStats`], deriving
    /// the stats-informed sharding permutation, and partitioning along its
    /// leading dimension once (`O(rows × dims)` — the setup cost every
    /// subsequent query on this session skips).
    ///
    /// # Errors
    /// [`CubeError::CarriedDimensionView`] on a carried-dimension view
    /// (`cube_dims() < dims()`): those are engine-internal shard tables
    /// whose trailing dimensions must not be enumerated, and the subcube
    /// machinery (like the parallel engine) only shards ordinary tables.
    pub fn new(table: Table) -> Result<CubeSession, CubeError> {
        if table.cube_dims() != table.dims() {
            return Err(CubeError::CarriedDimensionView);
        }
        let stats_state = StatsState::new(&table);
        let stats = stats_state.stats();
        let ordering = stats.recommend_ordering();
        let perm = ordering.permutation(&table);
        let (tids, groups) = table.shard_by_dim(perm[0]);
        Ok(CubeSession {
            table: Arc::new(table),
            stats,
            stats_state,
            prep: Arc::new(EnginePrep {
                ordering,
                perm,
                tids,
                groups,
            }),
            star_pool: None,
            materialized: None,
            cache: CacheStats {
                stat_builds: 1,
                partition_builds: 1,
                ..CacheStats::default()
            },
        })
    }

    /// The session's fact table.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// The cached measured statistics of the table.
    pub fn stats(&self) -> &TableStats {
        &self.stats
    }

    /// Cache build counters (see [`CacheStats`]).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache
    }

    /// What [`recommend`] picks for this table at `min_sup`, using the
    /// cached stats.
    pub fn recommend(&self, min_sup: u64) -> Algorithm {
        recommend(&self.stats, min_sup)
    }

    /// The stats-informed sharding order this session derived once
    /// ([`TableStats::recommend_ordering`]) and hands to the engine —
    /// together with its cached permutation and leading-dimension
    /// partition — on every warm engine-routed query against the base
    /// table.
    pub fn sharding_ordering(&self) -> DimOrdering {
        self.prep.ordering
    }

    /// Start composing a query against this session's table.
    pub fn query(&mut self) -> CubeQuery<'_, CountOnly> {
        CubeQuery {
            session: self,
            spec: CountOnly,
            dims: None,
            selections: Vec::new(),
            min_sup: 1,
            closed: None,
            algorithm: None,
            engine: None,
            threads: None,
            token: CancelToken::new(),
            deadline: None,
            budget: None,
            misuse: None,
        }
    }

    fn star_pool(&mut self) -> Arc<Vec<TupleId>> {
        if self.star_pool.is_none() {
            self.star_pool = Some(Arc::new(ccube_star::lex_sorted_pool(&self.table)));
            self.cache.pool_builds += 1;
        }
        self.star_pool.as_ref().expect("just built").clone()
    }

    /// The dimension the cached partition keys on (`perm[0]` of the
    /// sharding permutation).
    fn leading_dim(&self) -> usize {
        self.prep.perm[0]
    }

    /// Ascending tuple IDs of the slice `leading_dim = value`, from the
    /// cached partition (no column scan).
    fn leading_slice_tids(&self, value: u32) -> Vec<TupleId> {
        let EnginePrep { tids, groups, .. } = &*self.prep;
        match groups.binary_search_by_key(&value, |g| g.value) {
            Ok(i) => tids[groups[i].range()].to_vec(),
            Err(_) => Vec::new(),
        }
    }

    /// Append a batch of encoded tuples (`rows.len() / dims` rows, row-major
    /// like [`ccube_core::TableBuilder::row`]) and bring every cached
    /// artifact current **incrementally** — nothing is rebuilt from scratch:
    ///
    /// * the table itself grows in place, widening any column whose natural
    ///   width a new value exceeds ([`Table::append_rows_with`]);
    /// * the [`TableStats`] measurement is extended over the new rows only;
    /// * the cached leading-dimension partition is merge-patched (the
    ///   sharding ordering and permutation stay **frozen at session
    ///   creation**, so warm engine starts and the `slice(leading, v)` fast
    ///   path remain stable across ingests);
    /// * the StarArray lex-sorted pool, if built, is merge-patched;
    /// * the materialized closed cube, if built, is delta-patched: only the
    ///   groups the batch joins are re-summarized (see `crates/delta`).
    ///
    /// In-flight [`CellStream`]s keep the pre-ingest snapshot (copy-on-write
    /// at the session boundary); queries started after `ingest` returns see
    /// the grown table. Empty batches are valid and touch nothing.
    ///
    /// # Errors
    /// Typed append validation ([`CubeError::BadRowWidth`],
    /// [`CubeError::UnrepresentableValue`], [`CubeError::BadMeasureColumn`]
    /// via [`CubeSession::ingest_with_measures`]) — on error the session is
    /// unchanged.
    pub fn ingest(&mut self, rows: &[u32]) -> Result<IngestStats, CubeError> {
        self.ingest_with_measures(rows, &[])
    }

    /// [`CubeSession::ingest`] with measure columns: every measure column
    /// the table carries must be supplied by name, with one value per
    /// appended row.
    pub fn ingest_with_measures(
        &mut self,
        rows: &[u32],
        measures: &[(&str, &[f64])],
    ) -> Result<IngestStats, CubeError> {
        let old_rows = self.table.rows();
        // Copy-on-write at the session boundary: streams still consuming the
        // previous snapshot hold their own `Arc`, so the append clones at
        // most once and never mutates a table a query can observe.
        let report = Arc::make_mut(&mut self.table).append_rows_with(rows, measures)?;
        self.cache.ingests += 1;
        let mut stats = IngestStats {
            rows: report.rows,
            widened: report.widened,
            repacked: report.repacked,
            pool_patched: false,
            materialization: None,
        };
        if report.rows == 0 {
            return Ok(stats);
        }
        self.stats_state.extend(&self.table, old_rows);
        self.stats = self.stats_state.stats();
        self.patch_partition(old_rows);
        self.cache.artifacts_patched += 2; // stats + partition
        if self.patch_pool(old_rows) {
            stats.pool_patched = true;
            self.cache.artifacts_patched += 1;
        }
        if let Some(mut cube) = self.materialized.take() {
            let prep = self.prep.clone();
            let delta = cube.patch(
                &self.table,
                old_rows,
                &DeltaPlan {
                    order: &prep.perm,
                    tids: &prep.tids,
                    groups: &prep.groups,
                    threads: maintenance_threads(),
                },
            );
            self.materialized = Some(cube);
            self.cache.artifacts_patched += 1;
            self.cache.groups_rechecked += delta.groups_rechecked;
            stats.materialization = Some(delta);
        }
        Ok(stats)
    }

    /// Build (or rebuild) the materialized closed cube at `min_sup`: every
    /// closed cell with at least that count, kept current under
    /// [`CubeSession::ingest`] and served by
    /// [`CubeSession::query_materialized`] at any threshold ≥ `min_sup`.
    ///
    /// # Errors
    /// [`CubeError::ZeroMinSup`].
    pub fn materialize(&mut self, min_sup: u64) -> Result<DeltaStats, CubeError> {
        let prep = self.prep.clone();
        let (cube, stats) = MaterializedCube::build(
            &self.table,
            min_sup,
            &DeltaPlan {
                order: &prep.perm,
                tids: &prep.tids,
                groups: &prep.groups,
                threads: maintenance_threads(),
            },
        )?;
        self.materialized = Some(cube);
        self.cache.artifacts_rebuilt += 1;
        self.cache.groups_rechecked += stats.groups_rechecked;
        Ok(stats)
    }

    /// The session's materialized closed cube, if one has been built.
    pub fn materialized(&self) -> Option<&MaterializedCube> {
        self.materialized.as_ref()
    }

    /// Serve the closed iceberg cube of the **base table** at `min_sup`
    /// straight from the materialization — no recursion, no partitioning,
    /// one ordered scan of the materialized cells (count-only; emitted in
    /// lexicographic cell order). Cell-for-cell identical to a cold
    /// `query().min_sup(k).run(..)` on any algorithm.
    ///
    /// # Errors
    /// [`CubeError::MaterializationUnavailable`] when no materialization
    /// exists or it was built at a higher threshold than `min_sup`;
    /// [`CubeError::ZeroMinSup`].
    pub fn query_materialized<S: CellSink<()>>(
        &self,
        min_sup: u64,
        sink: &mut S,
    ) -> Result<u64, CubeError> {
        match &self.materialized {
            Some(cube) => cube.serve(min_sup, sink),
            None => Err(CubeError::MaterializationUnavailable { min_sup }),
        }
    }

    /// Merge the appended rows (`old_rows..`) into the cached level-0
    /// partition: sort the batch by leading-dimension value, then splice
    /// value-runs into the existing value-ascending group list. Old tuples
    /// keep their positions ahead of appended ones within each group
    /// (appended IDs are larger), preserving the ascending-tid invariant
    /// the cold counting sort establishes.
    fn patch_partition(&mut self, old_rows: usize) {
        let d = self.prep.perm[0];
        let col = self.table.col(d);
        let mut batch: Vec<(u32, TupleId)> = (old_rows..self.table.rows())
            .map(|t| (col.get(t), t as TupleId))
            .collect();
        batch.sort_unstable();
        let old = self.prep.clone();
        let mut tids = Vec::with_capacity(self.table.rows());
        let mut groups = Vec::with_capacity(old.groups.len());
        let mut bi = 0;
        for g in &old.groups {
            while bi < batch.len() && batch[bi].0 < g.value {
                push_run(&batch, &mut bi, &mut tids, &mut groups);
            }
            let start = tids.len() as u32;
            tids.extend_from_slice(&old.tids[g.range()]);
            while bi < batch.len() && batch[bi].0 == g.value {
                tids.push(batch[bi].1);
                bi += 1;
            }
            groups.push(Group {
                value: g.value,
                start,
                end: tids.len() as u32,
            });
        }
        while bi < batch.len() {
            push_run(&batch, &mut bi, &mut tids, &mut groups);
        }
        self.prep = Arc::new(EnginePrep {
            ordering: old.ordering,
            perm: old.perm.clone(),
            tids,
            groups,
        });
    }

    /// Merge the appended rows into the StarArray lex-sorted pool, if one
    /// was ever built: sort the batch row-lexicographically and two-pointer
    /// merge with the existing pool (old tuples first on equal keys — their
    /// IDs are smaller — matching the stable radix order of a cold build).
    fn patch_pool(&mut self, old_rows: usize) -> bool {
        let Some(pool) = self.star_pool.take() else {
            return false;
        };
        let table = &*self.table;
        let key_cmp = |a: TupleId, b: TupleId| {
            for d in 0..table.cube_dims() {
                let c = table.col(d);
                match c.get(a as usize).cmp(&c.get(b as usize)) {
                    std::cmp::Ordering::Equal => {}
                    other => return other,
                }
            }
            std::cmp::Ordering::Equal
        };
        let mut batch: Vec<TupleId> = (old_rows as TupleId..table.rows() as TupleId).collect();
        batch.sort_by(|&a, &b| key_cmp(a, b).then_with(|| a.cmp(&b)));
        let mut merged = Vec::with_capacity(pool.len() + batch.len());
        let (mut i, mut j) = (0, 0);
        while i < pool.len() && j < batch.len() {
            if key_cmp(pool[i], batch[j]) != std::cmp::Ordering::Greater {
                merged.push(pool[i]);
                i += 1;
            } else {
                merged.push(batch[j]);
                j += 1;
            }
        }
        merged.extend_from_slice(&pool[i..]);
        merged.extend_from_slice(&batch[j..]);
        self.star_pool = Some(Arc::new(merged));
        true
    }
}

/// Worker threads for artifact maintenance (materialized-cube builds and
/// patches) — maintenance is synchronous on the ingest caller, so it uses
/// the machine rather than a per-query budget.
fn maintenance_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Append the run of equal leading values starting at `batch[*bi]` as one
/// brand-new partition group.
fn push_run(
    batch: &[(u32, TupleId)],
    bi: &mut usize,
    tids: &mut Vec<TupleId>,
    groups: &mut Vec<Group>,
) {
    let value = batch[*bi].0;
    let start = tids.len() as u32;
    while *bi < batch.len() && batch[*bi].0 == value {
        tids.push(batch[*bi].1);
        *bi += 1;
    }
    groups.push(Group {
        value,
        start,
        end: tids.len() as u32,
    });
}

impl std::fmt::Debug for CubeSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CubeSession")
            .field("rows", &self.table.rows())
            .field("dims", &self.table.dims())
            .field("cache", &self.cache)
            .finish()
    }
}

/// The resolved execution plan of a [`CubeQuery`] (see [`CubeQuery::plan`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueryPlan {
    /// Algorithm the query will run (explicit or planner-chosen).
    pub algorithm: Algorithm,
    /// Whether only closed cells will be emitted.
    pub closed: bool,
    /// Whether the run goes through the partition-parallel engine.
    pub parallel: bool,
}

/// Counters returned by the [`CubeQuery::stats`] terminal.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Result cells the query produced.
    pub cells: u64,
    /// Sum of the result cells' counts (a cheap cross-algorithm checksum).
    pub count_sum: u64,
    /// Engine scheduling/memory counters (all-zero for sequential runs).
    pub engine: EngineStats,
}

/// A composable cube query against a [`CubeSession`] — see the
/// builder vocabulary and subcube semantics described at the top of this
/// file.
#[must_use = "a CubeQuery does nothing until run(), stats() or stream()"]
pub struct CubeQuery<'s, M: MeasureSpec = CountOnly> {
    session: &'s mut CubeSession,
    spec: M,
    dims: Option<DimMask>,
    /// `(dimension, allowed values)` conjuncts, in call order.
    selections: Vec<(usize, Vec<u32>)>,
    min_sup: u64,
    closed: Option<bool>,
    algorithm: Option<Algorithm>,
    engine: Option<EngineConfig>,
    threads: Option<usize>,
    /// The query's lifecycle token, created with the builder so
    /// [`CubeQuery::handle`] can hand out cancel handles before the run
    /// starts.
    token: CancelToken,
    deadline: Option<Duration>,
    budget: Option<usize>,
    /// First builder-misuse error, deferred to the terminal (builders stay
    /// panic-free; the terminal reports it as a typed error).
    misuse: Option<CubeError>,
}

impl<'s, M: MeasureSpec> CubeQuery<'s, M> {
    /// Project the cube onto the dimensions in `mask` (bits above the
    /// table's dimensionality are ignored). Result cells are over the kept
    /// dimensions in ascending original order; closedness is computed
    /// relative to the projected subtable.
    pub fn dims(mut self, mask: DimMask) -> Self {
        let kept = mask & DimMask::all(self.session.table.dims());
        if kept.is_empty() {
            self.flag(CubeError::EmptyProjection);
        }
        self.dims = Some(kept);
        self
    }

    /// Record the first builder-misuse error for the terminal to report.
    fn flag(&mut self, err: CubeError) {
        self.misuse.get_or_insert(err);
    }

    /// Keep only tuples with `value` on dimension `dim` (AND with previous
    /// selections). A slice on the session's cached leading sharding
    /// dimension reads the cached partition instead of scanning.
    pub fn slice(self, dim: usize, value: u32) -> Self {
        self.dice(dim, &[value])
    }

    /// Keep only tuples whose value on `dim` is one of `values` (OR within
    /// the list, AND with previous selections).
    pub fn dice(mut self, dim: usize, values: &[u32]) -> Self {
        let dims = self.session.table.dims();
        if dim >= dims {
            self.flag(CubeError::DimensionOutOfRange { dim, dims });
            return self;
        }
        self.selections.push((dim, values.to_vec()));
        self
    }

    /// Iceberg threshold: keep cells aggregating at least `k` tuples
    /// (default 1 — the full (closed) cube). `min_sup(0)` is misuse and
    /// surfaces as [`CubeError::ZeroMinSup`] at the terminal.
    pub fn min_sup(mut self, k: u64) -> Self {
        if k < 1 {
            self.flag(CubeError::ZeroMinSup);
            return self;
        }
        self.min_sup = k;
        self
    }

    /// Emit only closed cells (`true`, the default) or the plain iceberg
    /// cube (`false`). Orthogonal to [`CubeQuery::algorithm`]: an explicit
    /// algorithm is mapped to its family's variant with this closedness
    /// ([`Algorithm::with_closed`]).
    pub fn closed(mut self, closed: bool) -> Self {
        self.closed = Some(closed);
        self
    }

    /// Pin the algorithm instead of letting the planner pick from the
    /// session's cached [`TableStats`].
    pub fn algorithm(mut self, a: Algorithm) -> Self {
        self.algorithm = Some(a);
        self
    }

    /// Run partition-parallel on `n` worker threads (`0` = one per CPU).
    /// `threads(1)` still routes through the engine, which takes its
    /// sequential fast path.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n);
        self
    }

    /// Run through the partition-parallel engine with an explicit
    /// configuration (a later [`CubeQuery::threads`] call overrides only the
    /// thread count).
    pub fn engine(mut self, config: EngineConfig) -> Self {
        self.engine = Some(config);
        self
    }

    /// Abort the run once it has been executing for `d`: the terminal
    /// arms the query's token when the run starts, and the cooperative
    /// checkpoints trip [`CubeError::DeadlineExceeded`] on the first poll
    /// past the deadline — no watchdog thread.
    pub fn deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Enforce a cap on the engine's buffered output (the bytes the
    /// streaming merge holds: frontier + in-flight completions). The first
    /// sample above `bytes` aborts the run with
    /// [`CubeError::BudgetExceeded`] — peak usage stays within one
    /// [`CellBatch`] of the cap, never an OOM. Sequential (non-engine) runs
    /// buffer nothing and cannot trip it.
    pub fn memory_budget(mut self, bytes: usize) -> Self {
        self.budget = Some(bytes);
        self
    }

    /// A cloneable handle onto this query's lifecycle token, for cancelling
    /// the run from another thread (or from a signal handler) while a
    /// terminal is executing.
    pub fn handle(&self) -> QueryHandle {
        QueryHandle {
            token: self.token.clone(),
        }
    }

    /// Carry the complex measures of `spec` (Section 6.1) on every result
    /// cell; the sink/stream item type follows `spec`'s accumulator.
    pub fn measure<M2: MeasureSpec>(self, spec: M2) -> CubeQuery<'s, M2> {
        CubeQuery {
            session: self.session,
            spec,
            dims: self.dims,
            selections: self.selections,
            min_sup: self.min_sup,
            closed: self.closed,
            algorithm: self.algorithm,
            engine: self.engine,
            threads: self.threads,
            token: self.token,
            deadline: self.deadline,
            budget: self.budget,
            misuse: self.misuse,
        }
    }

    /// The execution plan this query resolves to, without running it.
    pub fn plan(&self) -> QueryPlan {
        let (algorithm, closed) = self.planned_algorithm();
        QueryPlan {
            algorithm,
            closed,
            parallel: self.engine.is_some() || self.threads.is_some(),
        }
    }

    fn planned_algorithm(&self) -> (Algorithm, bool) {
        match (self.algorithm, self.closed) {
            (Some(a), None) => (a, a.is_closed()),
            (Some(a), Some(c)) => (a.with_closed(c), c),
            (None, c) => {
                let closed = c.unwrap_or(true);
                let rec = recommend(&self.session.stats, self.min_sup);
                (rec.with_closed(closed), closed)
            }
        }
    }

    fn engine_config(&self) -> Option<EngineConfig> {
        match (self.engine, self.threads) {
            (Some(cfg), Some(n)) => Some(EngineConfig { threads: n, ..cfg }),
            (Some(cfg), None) => Some(cfg),
            // Threads-only: the session plans the rest of the config, and
            // picks its cached stats-informed sharding order so the run can
            // reuse the prepared permutation + level-0 partition.
            (None, Some(n)) => Some(EngineConfig {
                ordering: self.session.prep.ordering,
                ..EngineConfig::with_threads(n)
            }),
            (None, None) => None,
        }
    }

    /// Resolve the query into its target (sub)table, algorithm, engine
    /// routing and lifecycle limits, consuming the builder. Deferred builder
    /// misuse surfaces here, before any work is done.
    fn resolve(self) -> Result<(Resolved, M, &'s mut CubeSession), CubeError> {
        if let Some(err) = self.misuse {
            return Err(err);
        }
        let table_dims = self.session.table.dims();
        let full_mask = DimMask::all(table_dims);
        let mask = self.dims.unwrap_or(full_mask);
        let (algorithm, _) = self.planned_algorithm();
        let engine = self.engine_config();

        let base = mask == full_mask && self.selections.is_empty();
        let table = if base {
            self.session.table.clone()
        } else {
            // Selection: compose the conjuncts into one ascending tid list.
            // An initial `slice(0, v)` comes straight from the session's
            // cached first-dimension partition.
            let mut tids: Option<Vec<TupleId>> = None;
            for (dim, values) in &self.selections {
                match tids.as_mut() {
                    None => {
                        tids = Some(if *dim == self.session.leading_dim() && values.len() == 1 {
                            self.session.leading_slice_tids(values[0])
                        } else {
                            self.session.table.select_tids(*dim, values)
                        });
                    }
                    Some(tids) => self.session.table.filter_tids(*dim, values, tids),
                }
            }
            let tids = tids.unwrap_or_else(|| self.session.table.all_tids());
            // Projection: per-column gather of the kept dimensions, all of
            // them group-by (closedness relative to the subtable).
            let dim_order: Vec<usize> = mask.iter().collect();
            Arc::new(self.session.table.view(&tids, &dim_order, dim_order.len()))
        };
        // Warm engine start: base-table runs whose config realizes the
        // session's cached ordering reuse the prepared permutation and
        // level-0 partition (any other ordering re-derives both cold —
        // the cube is identical either way).
        let warm = match &engine {
            Some(cfg) if base && cfg.ordering == self.session.prep.ordering => {
                Some(self.session.prep.clone())
            }
            _ => None,
        };
        Ok((
            Resolved {
                table,
                base,
                algorithm,
                min_sup: self.min_sup,
                engine,
                warm,
                token: self.token,
                deadline: self.deadline,
                budget: self.budget,
            },
            self.spec,
            self.session,
        ))
    }
}

/// A cloneable cancel handle onto one query's run (see
/// [`CubeQuery::handle`]). Cancelling after the run finished is a no-op.
#[derive(Clone, Debug)]
pub struct QueryHandle {
    token: CancelToken,
}

impl QueryHandle {
    /// Trip the query's token: the run aborts at its next cooperative
    /// checkpoint and the terminal returns [`CubeError::Cancelled`].
    pub fn cancel(&self) {
        self.token.cancel();
    }

    /// Trip the query's token with an explicit `cause` (a supervisor
    /// reaping a wedged run passes [`CubeError::Wedged`]). First trip
    /// wins; returns whether this call was it.
    pub fn trip(&self, cause: CubeError) -> bool {
        self.token.trip(cause)
    }

    /// Whether the token has tripped (for any cause, not just cancel).
    /// Does not count as progress.
    pub fn is_tripped(&self) -> bool {
        self.token.is_tripped()
    }

    /// The run's progress epoch: advances every time a worker reaches a
    /// cooperative checkpoint. A watchdog that observes the same value
    /// across scans spanning its wedge timeout may conclude the run is
    /// stuck and [`trip`](QueryHandle::trip) it.
    pub fn progress(&self) -> u64 {
        self.token.progress()
    }

    /// Manually bump the progress epoch, for progress the checkpoints
    /// cannot see (a server pump successfully writing a batch to a slow
    /// client while the engine is back-pressured, say).
    pub fn note_progress(&self) {
        self.token.note_progress();
    }
}

/// A fully resolved query, ready to execute (possibly on another thread).
struct Resolved {
    table: Arc<Table>,
    /// Target is the session's base table (cached artifacts apply).
    base: bool,
    algorithm: Algorithm,
    min_sup: u64,
    engine: Option<EngineConfig>,
    /// The session's cached sharding artifacts, when this run can reuse
    /// them (base table, matching ordering).
    warm: Option<Arc<EnginePrep>>,
    token: CancelToken,
    deadline: Option<Duration>,
    budget: Option<usize>,
}

impl Resolved {
    /// Execute into `sink`, drawing the StarArray pool from `pool` when the
    /// sequential StarArray fast path applies. Arms the query's lifecycle
    /// token (deadline clock starts here) and installs it ambiently for the
    /// duration of the run, so the checkpoints in the cubers, the partition
    /// kernels and the engine all observe it.
    fn execute<M, S>(
        &self,
        pool: Option<&[TupleId]>,
        spec: &M,
        sink: &mut S,
    ) -> Result<EngineStats, CubeError>
    where
        M: MeasureSpec + Sync,
        M::Acc: Send,
        S: CellSink<M::Acc>,
    {
        if let Some(d) = self.deadline {
            self.token.set_deadline(Instant::now() + d);
        }
        if let Some(b) = self.budget {
            self.token.set_budget(b);
        }
        let _ambient = lifecycle::install(&self.token);
        if let Some(pool) = pool {
            debug_assert!(self.engine.is_none());
            run_guarded(|| match self.algorithm {
                Algorithm::StarArray => ccube_star::star_array_cube_pooled_with(
                    &self.table,
                    pool,
                    self.min_sup,
                    spec,
                    sink,
                ),
                Algorithm::CCubingStarArray => ccube_star::c_cubing_star_array_pooled_with(
                    &self.table,
                    pool,
                    self.min_sup,
                    spec,
                    sink,
                ),
                _ => unreachable!("pool is only drawn for StarArray-family plans"),
            })?;
            return Ok(EngineStats::default());
        }
        self.algorithm.execute_request(
            &CubeRequest {
                table: &self.table,
                min_sup: self.min_sup,
                engine: self.engine,
                warm: self.warm.as_ref().map(|prep| prep.warm_start()),
            },
            spec,
            sink,
        )
    }

    /// Whether the sequential StarArray pooled entry applies (base table,
    /// no engine, StarArray family).
    fn wants_pool(&self) -> bool {
        self.base
            && self.engine.is_none()
            && matches!(
                self.algorithm,
                Algorithm::StarArray | Algorithm::CCubingStarArray
            )
    }
}

impl<'s, M> CubeQuery<'s, M>
where
    M: MeasureSpec + Sync,
    M::Acc: Send,
{
    /// Execute the query, pushing every result cell into `sink`. Returns the
    /// engine counters (all-zero for sequential runs), or the typed error
    /// that ended the run (cancel/deadline/budget/panic/misuse) — output
    /// already pushed before an error is partial; discard it.
    pub fn run<S: CellSink<M::Acc>>(self, sink: &mut S) -> Result<EngineStats, CubeError> {
        let (resolved, spec, session) = self.resolve()?;
        let pool = resolved.wants_pool().then(|| session.star_pool());
        resolved.execute(pool.as_deref().map(Vec::as_slice), &spec, sink)
    }

    /// Execute the query with output discarded, returning cell/count/engine
    /// counters — the "how big is this cube" probe.
    pub fn stats(self) -> Result<QueryStats, CubeError> {
        let mut sink = CountingSink::default();
        let engine = self.run(&mut sink)?;
        Ok(QueryStats {
            cells: sink.cells,
            count_sum: sink.count_sum,
            engine,
        })
    }
}

impl<'s, M> CubeQuery<'s, M>
where
    M: MeasureSpec + Send + Sync + 'static,
    M::Acc: Send + 'static,
{
    /// Execute the query on a background thread and return a pull-based
    /// iterator over the result cells — the consumption path for serving
    /// code that cannot implement [`CellSink`](ccube_core::sink::CellSink).
    /// Backed by the engine's bounded-channel adapter
    /// ([`ccube_engine::ChannelSink`]), so a slow consumer back-pressures
    /// the computation instead of buffering the whole cube.
    ///
    /// Dropping the stream mid-iteration **cancels the producing run**: the
    /// drop trips the query token, unblocks the producer, and joins it —
    /// the producer has exited by the time the drop returns (within one
    /// checkpoint interval, not after the rest of the cube). Call
    /// [`CellStream::finish`] after exhaustion for the run's outcome
    /// ([`EngineStats`] or the typed error); builder misuse fails here,
    /// before any thread is spawned.
    pub fn stream(self) -> Result<CellStream<M::Acc>, CubeError> {
        let (resolved, spec, session) = self.resolve()?;
        let pool = resolved.wants_pool().then(|| session.star_pool());
        let (tx, rx) = mpsc::sync_channel::<CellBatch<M::Acc>>(4);
        let dims = resolved.table.dims();
        let token = resolved.token.clone();
        // Chaos fault scopes are thread-scoped; carry the spawner's across
        // to the producer so injected faults reach the run.
        let fault_scope = ccube_core::faults::current_scope();
        let handle = std::thread::Builder::new()
            .name("ccube-query-stream".into())
            .spawn(move || {
                let _chaos = fault_scope
                    .as_ref()
                    .map(ccube_core::faults::FaultScope::install);
                // Keep the query token ambient for the whole producer
                // thread, tail flush included — `execute` installs it for
                // the run itself, but the final `sink.finish()` happens
                // after that guard drops, and a supervisor tripping the
                // token (the serve watchdog reaping a wedge) must be able
                // to unblock that flush too.
                let _ambient = lifecycle::install(&resolved.token);
                let mut sink = ChannelSink::new(tx, dims, 0);
                let result = resolved.execute(pool.as_deref().map(Vec::as_slice), &spec, &mut sink);
                if result.is_ok() {
                    // Flush the tail batch only for completed runs; a failed
                    // run's partial tail is dropped here instead of sent.
                    sink.finish();
                }
                result
            })
            .expect("spawn stream worker");
        Ok(CellStream {
            rx: Some(rx),
            handle: Some(handle),
            pending: Vec::new().into_iter(),
            token,
            outcome: None,
        })
    }
}

/// Pull-based result iterator returned by [`CubeQuery::stream`]: yields
/// `(cell, count, accumulator)` triples in the producing run's emission
/// order.
///
/// Lifecycle:
/// * iterate to exhaustion, then call [`CellStream::finish`] for the run's
///   outcome — `Ok(EngineStats)` for a completed run, the typed
///   [`CubeError`] for one that was cancelled, timed out, tripped its
///   budget, or panicked (the iterator simply ends early in those cases;
///   already-yielded cells are a valid prefix of the output);
/// * [`CellStream::cancel`] aborts the run explicitly and returns its
///   (error) outcome;
/// * dropping the stream cancels the run and joins the producer — the
///   producing thread has exited by the time the drop returns.
pub struct CellStream<A = ()> {
    rx: Option<mpsc::Receiver<CellBatch<A>>>,
    handle: Option<std::thread::JoinHandle<Result<EngineStats, CubeError>>>,
    pending: std::vec::IntoIter<(Cell, u64, A)>,
    token: CancelToken,
    outcome: Option<Result<EngineStats, CubeError>>,
}

impl<A> CellStream<A> {
    /// Join the producer and record its outcome (idempotent). A panic that
    /// escaped even the run's containment resurfaces here.
    fn join(&mut self) {
        if let Some(handle) = self.handle.take() {
            match handle.join() {
                Ok(result) => self.outcome = Some(result),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    }

    /// The run's outcome: engine counters for a completed run, the typed
    /// error for an aborted one. Blocks until the producer exits — after
    /// the iterator returned `None` that is immediate; calling it earlier
    /// hangs up (remaining output is discarded) and waits for the run,
    /// which keeps computing in discard mode. Use [`CellStream::cancel`] to
    /// abort instead of waiting.
    pub fn finish(mut self) -> Result<EngineStats, CubeError> {
        self.rx = None;
        self.join();
        self.outcome
            .take()
            .expect("join() always records an outcome")
    }

    /// Cancel the producing run and return its outcome (normally
    /// `Err(Cancelled)`; a run that already completed or failed reports
    /// that outcome instead).
    pub fn cancel(self) -> Result<EngineStats, CubeError> {
        self.token.cancel();
        self.finish()
    }

    /// A cancel handle onto the producing run's token (same as the one
    /// [`CubeQuery::handle`] hands out).
    pub fn handle(&self) -> QueryHandle {
        QueryHandle {
            token: self.token.clone(),
        }
    }

    /// Non-blocking-ish pull: like `next()`, but waits at most `wait` for
    /// the producer before reporting [`StreamPoll::Idle`]. Lets a serving
    /// loop interleave liveness traffic (heartbeats) with result batches
    /// instead of blocking indefinitely on a slow query.
    ///
    /// [`StreamPoll::End`] is terminal and matches `next()` returning
    /// `None`: the producer has exited and been joined, and
    /// [`CellStream::finish`] will not block.
    pub fn poll_next(&mut self, wait: Duration) -> StreamPoll<A>
    where
        A: Clone,
    {
        loop {
            if let Some(item) = self.pending.next() {
                return StreamPoll::Item(item);
            }
            ccube_core::faults::inject("stream.recv");
            let Some(rx) = self.rx.as_ref() else {
                return StreamPoll::End;
            };
            match rx.recv_timeout(wait) {
                Ok(batch) => {
                    self.pending = batch
                        .iter()
                        .map(|(cell, count, acc)| (Cell::from_values(cell), count, acc.clone()))
                        .collect::<Vec<_>>()
                        .into_iter();
                }
                Err(mpsc::RecvTimeoutError::Timeout) => return StreamPoll::Idle,
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    self.rx = None;
                    self.join();
                    return StreamPoll::End;
                }
            }
        }
    }
}

/// One step of [`CellStream::poll_next`].
#[derive(Debug)]
pub enum StreamPoll<A = ()> {
    /// A result triple, exactly as the iterator would yield it.
    Item((Cell, u64, A)),
    /// The producer is still running but emitted nothing within the wait
    /// window — the query is slow (or back-pressured), not finished.
    Idle,
    /// The stream is exhausted; call [`CellStream::finish`] for the
    /// outcome (it will not block).
    End,
}

impl<A: Clone> Iterator for CellStream<A> {
    type Item = (Cell, u64, A);

    fn next(&mut self) -> Option<(Cell, u64, A)> {
        loop {
            if let Some(item) = self.pending.next() {
                return Some(item);
            }
            ccube_core::faults::inject("stream.recv");
            match self.rx.as_ref()?.recv() {
                Ok(batch) => {
                    self.pending = batch
                        .iter()
                        .map(|(cell, count, acc)| (Cell::from_values(cell), count, acc.clone()))
                        .collect::<Vec<_>>()
                        .into_iter();
                }
                Err(_) => {
                    // Producer exited (completed or aborted): join it now so
                    // `finish` is non-blocking and an uncontained panic
                    // propagates instead of vanishing.
                    self.rx = None;
                    self.join();
                    return None;
                }
            }
        }
    }
}

impl<A> Drop for CellStream<A> {
    fn drop(&mut self) {
        // Cancel-on-drop: trip the token, hang up the channel (unparking a
        // producer blocked in send), and join. The producer aborts at its
        // next cooperative checkpoint, so the join is bounded by the
        // checkpoint interval — not by the rest of the cube.
        self.token.cancel();
        self.rx = None;
        if let Some(handle) = self.handle.take() {
            // Swallow the outcome (including a contained error): nobody is
            // left to observe it. An uncontained panic must not escalate a
            // drop into an abort, so it is swallowed too.
            let _ = handle.join();
        }
    }
}

impl<A> std::fmt::Debug for CellStream<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CellStream")
            .field("live", &self.rx.is_some())
            .field("generation", &self.token.generation())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccube_core::sink::{collect_counts, CollectSink};
    use ccube_core::TableBuilder;
    use ccube_data::SyntheticSpec;

    fn session() -> CubeSession {
        CubeSession::new(SyntheticSpec::uniform(400, 4, 6, 1.0, 11).generate()).unwrap()
    }

    #[test]
    fn default_query_is_the_planned_closed_cube() {
        let mut s = session();
        let plan = s.query().min_sup(2).plan();
        assert!(plan.closed);
        assert!(plan.algorithm.is_closed());
        let want = collect_counts(|sink| plan.algorithm.run(s.table(), 2, sink));
        let got = collect_counts(|sink| {
            s.query().min_sup(2).run(sink).unwrap();
        });
        assert_eq!(got, want);
    }

    #[test]
    fn closed_flag_is_orthogonal_to_algorithm() {
        let mut s = session();
        // Iceberg request on an explicitly closed algorithm family.
        let got = collect_counts(|sink| {
            s.query()
                .min_sup(2)
                .algorithm(Algorithm::CCubingStar)
                .closed(false)
                .run(sink)
                .unwrap();
        });
        let want = collect_counts(|sink| Algorithm::Star.run(s.table(), 2, sink));
        assert_eq!(got, want);
        assert_eq!(
            s.query()
                .algorithm(Algorithm::Buc)
                .closed(true)
                .plan()
                .algorithm,
            Algorithm::QcDfs
        );
    }

    #[test]
    fn slice_equals_hand_filtered_cube() {
        let mut s = session();
        let table = s.table().clone();
        for algo in [Algorithm::Buc, Algorithm::CCubingStarArray] {
            let got = collect_counts(|sink| {
                s.query()
                    .min_sup(2)
                    .algorithm(algo)
                    .slice(1, 3)
                    .run(sink)
                    .unwrap();
            });
            // Reference: filter by hand, cube the subtable.
            let tids = table.select_tids(1, &[3]);
            let filtered = table.view(&tids, &[0, 1, 2, 3], 4);
            let want = collect_counts(|sink| algo.run(&filtered, 2, sink));
            assert_eq!(got, want, "{algo}");
        }
    }

    #[test]
    fn dice_composes_conjunctively() {
        let mut s = session();
        let table = s.table().clone();
        let got = collect_counts(|sink| {
            s.query()
                .algorithm(Algorithm::CCubingMm)
                .dice(0, &[0, 1])
                .dice(2, &[1, 2, 3])
                .run(sink)
                .unwrap();
        });
        let mut tids = table.select_tids(0, &[0, 1]);
        table.filter_tids(2, &[1, 2, 3], &mut tids);
        let filtered = table.view(&tids, &[0, 1, 2, 3], 4);
        let want = collect_counts(|sink| Algorithm::CCubingMm.run(&filtered, 1, sink));
        assert_eq!(got, want);
    }

    #[test]
    fn projection_cubes_the_kept_dimensions() {
        let mut s = session();
        let table = s.table().clone();
        let mask: DimMask = [1usize, 3].into_iter().collect();
        let got = collect_counts(|sink| {
            s.query()
                .algorithm(Algorithm::CCubingStar)
                .min_sup(2)
                .dims(mask)
                .run(sink)
                .unwrap();
        });
        let projected = table.view(&table.all_tids(), &[1, 3], 2);
        let want = collect_counts(|sink| Algorithm::CCubingStar.run(&projected, 2, sink));
        assert_eq!(got, want);
        assert!(got.keys().all(|c| c.dims() == 2));
    }

    #[test]
    fn threads_route_through_the_engine() {
        let mut s = session();
        let want = collect_counts(|sink| {
            s.query()
                .min_sup(2)
                .algorithm(Algorithm::CCubingStar)
                .run(sink)
                .unwrap();
        });
        for threads in [1usize, 2, 8] {
            let got = collect_counts(|sink| {
                s.query()
                    .min_sup(2)
                    .algorithm(Algorithm::CCubingStar)
                    .threads(threads)
                    .run(sink)
                    .unwrap();
            });
            assert_eq!(got, want, "threads={threads}");
        }
        // slice + engine compose.
        let sliced_want = collect_counts(|sink| {
            s.query()
                .slice(0, 1)
                .algorithm(Algorithm::CCubingStar)
                .run(sink)
                .unwrap();
        });
        let sliced_got = collect_counts(|sink| {
            s.query()
                .slice(0, 1)
                .algorithm(Algorithm::CCubingStar)
                .threads(4)
                .run(sink)
                .unwrap();
        });
        assert_eq!(sliced_got, sliced_want);
    }

    #[test]
    fn star_pool_cache_is_invisible_and_built_once() {
        let mut s = session();
        assert_eq!(s.cache_stats().pool_builds, 0);
        let want = collect_counts(|sink| Algorithm::CCubingStarArray.run(s.table(), 2, sink));
        for round in 0..3 {
            let got = collect_counts(|sink| {
                s.query()
                    .min_sup(2)
                    .algorithm(Algorithm::CCubingStarArray)
                    .run(sink)
                    .unwrap();
            });
            assert_eq!(got, want, "round {round}");
        }
        let cache = s.cache_stats();
        assert_eq!(cache.pool_builds, 1, "pool rebuilt on a warm query");
        assert_eq!(cache.stat_builds, 1);
        assert_eq!(cache.partition_builds, 1);
    }

    #[test]
    fn measures_ride_through_the_query() {
        use ccube_core::measure::ColumnStats;
        let t = SyntheticSpec::uniform(300, 3, 5, 1.0, 6).generate_with_measure("m");
        let spec = ColumnStats { column: 0 };
        let mut want = CollectSink::default();
        Algorithm::CCubingMm.run_with(&t, 2, &spec, &mut want);
        let mut s = CubeSession::new(t).unwrap();
        let mut got = CollectSink::default();
        s.query()
            .min_sup(2)
            .algorithm(Algorithm::CCubingMm)
            .measure(spec)
            .run(&mut got)
            .unwrap();
        assert_eq!(got.cells.len(), want.cells.len());
        for (cell, (n, agg)) in &want.cells {
            let (n2, agg2) = &got.cells[cell];
            assert_eq!(n, n2);
            assert!((agg.sum - agg2.sum).abs() < 1e-9);
        }
    }

    #[test]
    fn stream_yields_the_full_result() {
        let mut s = session();
        let want = collect_counts(|sink| {
            s.query()
                .min_sup(2)
                .algorithm(Algorithm::CCubingStar)
                .run(sink)
                .unwrap();
        });
        let got: ccube_core::fxhash::FxHashMap<Cell, u64> = s
            .query()
            .min_sup(2)
            .algorithm(Algorithm::CCubingStar)
            .stream()
            .unwrap()
            .map(|(cell, count, ())| (cell, count))
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn poll_next_drains_to_end_and_matches_the_iterator() {
        let mut s = session();
        let want: Vec<(Cell, u64)> = s
            .query()
            .min_sup(2)
            .algorithm(Algorithm::CCubingStar)
            .stream()
            .unwrap()
            .map(|(cell, count, ())| (cell, count))
            .collect();
        let mut stream = s
            .query()
            .min_sup(2)
            .algorithm(Algorithm::CCubingStar)
            .stream()
            .unwrap();
        let mut got = Vec::new();
        loop {
            match stream.poll_next(Duration::from_millis(50)) {
                StreamPoll::Item((cell, count, ())) => got.push((cell, count)),
                StreamPoll::Idle => continue,
                StreamPoll::End => break,
            }
        }
        assert_eq!(got, want, "poll_next preserves emission order");
        // End is terminal: finish() is immediate and the run completed.
        assert!(stream.finish().is_ok());
    }

    #[test]
    fn stream_drops_cleanly_mid_iteration() {
        let mut s = CubeSession::new(SyntheticSpec::uniform(500, 5, 6, 0.5, 3).generate()).unwrap();
        let mut stream = s.query().algorithm(Algorithm::Buc).stream().unwrap();
        let first = stream.next();
        assert!(first.is_some());
        drop(stream); // must not hang or panic
    }

    #[test]
    fn session_rejects_carried_dimension_views() {
        // A carried-dimension view's trailing dims must not be enumerated;
        // the subcube machinery would silently promote them to group-by
        // dims, so the session refuses the table outright.
        let t = SyntheticSpec::uniform(50, 3, 4, 0.0, 1).generate();
        let view = t.view(&t.all_tids(), &[0, 1, 2], 2);
        assert!(matches!(
            CubeSession::new(view),
            Err(CubeError::CarriedDimensionView)
        ));
    }

    #[test]
    fn empty_selection_yields_empty_result() {
        let mut s = session();
        let mut sink = CollectSink::<()>::default();
        s.query().slice(0, 999).run(&mut sink).unwrap();
        assert!(sink.is_empty());
    }

    #[test]
    fn leading_slice_uses_the_cached_partition() {
        // Equivalence of the partition fast path and the generic scan, on
        // whichever dimension the stats-informed ordering leads with.
        let t = TableBuilder::new(2)
            .cards(vec![4, 3])
            .row(&[2, 0])
            .row(&[0, 1])
            .row(&[3, 2])
            .row(&[0, 0])
            .row(&[2, 1])
            .build()
            .unwrap();
        let s = CubeSession::new(t.clone()).unwrap();
        let lead = s.leading_dim();
        for v in 0..4 {
            assert_eq!(
                s.leading_slice_tids(v),
                t.select_tids(lead, &[v]),
                "value {v}"
            );
        }
    }

    #[test]
    fn warm_engine_queries_reuse_the_cached_partition() {
        // Engine-routed base-table queries match the cold (Original-order)
        // engine result and a plain sequential run, proving the warm-start
        // permutation + level-0 partition reuse is invisible.
        let mut s = session();
        let want = collect_counts(|sink| {
            s.query()
                .min_sup(2)
                .algorithm(Algorithm::CCubingStar)
                .run(sink)
                .unwrap();
        });
        // Force the sharded path (the table is small enough for the
        // sequential fast path) with the session's own ordering, so the
        // warm start is actually consumed.
        let ordering = s.sharding_ordering();
        let warm = collect_counts(|sink| {
            s.query()
                .min_sup(2)
                .algorithm(Algorithm::CCubingStar)
                .engine(EngineConfig {
                    ordering,
                    ..EngineConfig::with_threads(4).always_sharded()
                })
                .run(sink)
                .unwrap();
        });
        assert_eq!(warm, want);
        // An explicit engine config with a different ordering bypasses the
        // warm start and still agrees.
        let cold = collect_counts(|sink| {
            s.query()
                .min_sup(2)
                .algorithm(Algorithm::CCubingStar)
                .engine(EngineConfig {
                    ordering: DimOrdering::Original,
                    ..EngineConfig::with_threads(4)
                })
                .run(sink)
                .unwrap();
        });
        assert_eq!(cold, want);
        // The cached partition was built exactly once, at session creation.
        assert_eq!(s.cache_stats().partition_builds, 1);
    }

    /// A fresh session over the same rows as `s`, for patched-vs-rebuilt
    /// artifact comparisons.
    fn rebuilt(s: &CubeSession) -> CubeSession {
        CubeSession::new(s.table().clone()).unwrap()
    }

    #[test]
    fn ingest_patches_artifacts_instead_of_rebuilding() {
        let mut s = session();
        s.star_pool(); // force the lazy pool so ingest has it to maintain
        let stats = s.ingest(&[0, 1, 2, 3, 1, 1, 1, 1]).unwrap();
        assert_eq!(stats.rows, 2);
        assert!(stats.pool_patched);
        let cache = s.cache_stats();
        // The build counters did not move: everything was patched.
        assert_eq!(cache.stat_builds, 1);
        assert_eq!(cache.partition_builds, 1);
        assert_eq!(cache.pool_builds, 1);
        assert_eq!(cache.ingests, 1);
        assert_eq!(cache.artifacts_patched, 3); // stats + partition + pool
        assert_eq!(cache.artifacts_rebuilt, 0);
        // And every patched artifact equals its cold-rebuilt twin.
        let mut cold = rebuilt(&s);
        assert_eq!(s.stats(), cold.stats());
        assert_eq!(s.prep.perm, cold.prep.perm);
        assert_eq!(s.prep.tids, cold.prep.tids);
        assert_eq!(s.prep.groups, cold.prep.groups);
        assert_eq!(*s.star_pool(), *cold.star_pool());
    }

    #[test]
    fn ingest_with_new_leading_values_splices_new_groups() {
        let mut s = session();
        let lead = s.leading_dim();
        // A row whose leading-dimension value the table has never seen:
        // card is 6, so value 6 widens nothing but opens a new group (and
        // possibly a new column width is untouched — 6 < 256).
        let mut row = vec![0u32; s.table().dims()];
        row[lead] = 6;
        s.ingest(&row).unwrap();
        let cold = rebuilt(&s);
        assert_eq!(s.prep.groups, cold.prep.groups);
        assert_eq!(s.prep.tids, cold.prep.tids);
        // The cached-partition slice fast path sees the new group.
        let tid = (s.table().rows() - 1) as TupleId;
        assert!(s.leading_slice_tids(6).contains(&tid));
    }

    #[test]
    fn ingest_empty_batch_is_a_no_op() {
        let mut s = session();
        let before_prep = s.prep.clone();
        let stats = s.ingest(&[]).unwrap();
        assert_eq!(stats, IngestStats::default());
        assert_eq!(s.cache_stats().ingests, 1);
        assert_eq!(s.cache_stats().artifacts_patched, 0);
        assert!(Arc::ptr_eq(&s.prep, &before_prep));
    }

    #[test]
    fn ingest_error_leaves_the_session_unchanged() {
        let mut s = session();
        let rows_before = s.table().rows();
        // Wrong width.
        assert!(matches!(
            s.ingest(&[0, 1, 2]),
            Err(CubeError::BadRowWidth { .. })
        ));
        assert_eq!(s.table().rows(), rows_before);
        assert_eq!(s.cache_stats().ingests, 0);
    }

    #[test]
    fn materialization_serves_identically_and_patches_under_ingest() {
        let mut s = session();
        let build = s.materialize(2).unwrap();
        assert!(build.groups_rechecked > 0);
        assert_eq!(s.cache_stats().artifacts_rebuilt, 1);
        // Served result == any cold algorithm run.
        let want = collect_counts(|sink| {
            s.query()
                .min_sup(2)
                .algorithm(Algorithm::CCubingStar)
                .run(sink)
                .unwrap();
        });
        let mut sink = CollectSink::default();
        s.query_materialized(2, &mut sink).unwrap();
        assert_eq!(sink.counts(), want);
        // Ingest patches the materialization: far fewer groups re-checked
        // than the cold build enumerated, and the result stays exact.
        let ingest = s.ingest(&[0, 1, 2, 3]).unwrap();
        let delta = ingest.materialization.expect("materialization patched");
        assert!(delta.groups_rechecked * 2 < build.groups_rechecked);
        assert_eq!(delta.cells_removed, 0);
        let want = collect_counts(|sink| {
            s.query()
                .min_sup(2)
                .algorithm(Algorithm::CCubingStar)
                .run(sink)
                .unwrap();
        });
        let mut sink = CollectSink::default();
        s.query_materialized(2, &mut sink).unwrap();
        assert_eq!(sink.counts(), want);
        // Higher thresholds are a count filter; lower ones are typed errors.
        assert!(s.query_materialized(5, &mut CollectSink::default()).is_ok());
        assert!(matches!(
            s.query_materialized(1, &mut CollectSink::default()),
            Err(CubeError::MaterializationUnavailable { min_sup: 1 })
        ));
    }

    #[test]
    fn unmaterialized_session_returns_typed_error() {
        let s = session();
        assert!(matches!(
            s.query_materialized(2, &mut CollectSink::default()),
            Err(CubeError::MaterializationUnavailable { min_sup: 2 })
        ));
        assert!(s.materialized().is_none());
    }

    #[test]
    fn ingest_widens_columns_without_disturbing_queries() {
        let table = TableBuilder::new(3)
            .row(&[0, 0, 0])
            .row(&[1, 1, 1])
            .row(&[0, 0, 1])
            .build()
            .unwrap();
        let mut s = CubeSession::new(table).unwrap();
        s.materialize(1).unwrap();
        // Value 300 exceeds u8 on every dimension.
        let stats = s.ingest(&[300, 0, 0]).unwrap();
        assert!(stats.widened.contains(0));
        let want = collect_counts(|sink| {
            s.query().min_sup(1).run(sink).unwrap();
        });
        let mut sink = CollectSink::default();
        s.query_materialized(1, &mut sink).unwrap();
        assert_eq!(sink.counts(), want);
    }
}
