//! # c-cubing — closed iceberg cubes by aggregation-based checking
//!
//! A from-scratch Rust implementation of *C-Cubing: Efficient Computation of
//! Closed Cubes by Aggregation-Based Checking* (Xin, Shao, Han, Liu;
//! ICDE 2006), including every substrate the paper builds on:
//!
//! * the closedness measure — `(Closed Mask, Representative Tuple ID)` —
//!   that turns closedness into an algebraic aggregate
//!   ([`ccube_core::closedness`]);
//! * the three C-Cubing algorithms: [`Algorithm::CCubingMm`],
//!   [`Algorithm::CCubingStar`], [`Algorithm::CCubingStarArray`];
//! * their host iceberg cubers MM-Cubing, Star-Cubing and StarArray, plus
//!   the BUC and QC-DFS baselines;
//! * data generators matching the paper's experiments (Zipf skew,
//!   dependence rules, a weather-dataset surrogate);
//! * closed-rule mining and lossless recovery queries (Section 6.2).
//!
//! ## Quickstart
//!
//! ```
//! use c_cubing::prelude::*;
//!
//! // Table 1 of the paper: (A, B, C, D), measure count, min_sup = 2.
//! let table = TableBuilder::new(4)
//!     .row(&[0, 0, 0, 0]) // a1 b1 c1 d1
//!     .row(&[0, 0, 0, 2]) // a1 b1 c1 d3
//!     .row(&[0, 1, 1, 1]) // a1 b2 c2 d2
//!     .build()
//!     .unwrap();
//!
//! let mut sink = CollectSink::default();
//! Algorithm::CCubingStar.run(&table, 2, &mut sink);
//!
//! // Exactly the two closed iceberg cells from Example 1:
//! assert_eq!(sink.len(), 2);
//! assert_eq!(sink.counts()[&Cell::from_values(&[0, 0, 0, STAR])], 2);
//! assert_eq!(sink.counts()[&Cell::from_values(&[0, STAR, STAR, STAR])], 3);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use ccube_baselines as baselines;
pub use ccube_core as core;
pub use ccube_data as data;
pub use ccube_engine as engine;
pub use ccube_mm as mm;
pub use ccube_rules as rules;
pub use ccube_star as star;

pub use ccube_engine::{EngineConfig, EngineStats};

use ccube_core::measure::{CountOnly, MeasureSpec};
use ccube_core::sink::CellSink;
use ccube_core::Table;
use ccube_engine::ShardedSink;

/// Everything needed for typical use.
pub mod prelude {
    pub use crate::{recommend, Algorithm, EngineConfig, EngineStats, Workload};
    pub use ccube_core::measure::{AllColumns, ColumnStats, CountOnly, MeasureSpec};
    pub use ccube_core::order::DimOrdering;
    pub use ccube_core::sink::{
        CellBatch, CellSink, CollectSink, CountingSink, FnSink, NullSink, SizeSink, WriterSink,
    };
    pub use ccube_core::{Cell, ClosedInfo, DimMask, Table, TableBuilder, TupleId, STAR};
    pub use ccube_data::{RuleSet, SyntheticSpec, WeatherSpec};
    pub use ccube_rules::{mine_rules, ClosedCube};
}

/// All cubing algorithms in the workspace, runnable through one interface.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// BUC (iceberg baseline).
    Buc,
    /// QC-DFS (closed baseline; raw-data-based checking).
    QcDfs,
    /// MM-Cubing (iceberg).
    Mm,
    /// C-Cubing(MM) — closed, aggregation-based checking.
    CCubingMm,
    /// Star-Cubing (iceberg).
    Star,
    /// C-Cubing(Star) — closed, with closed pruning.
    CCubingStar,
    /// StarArray (iceberg; multiway traversal).
    StarArray,
    /// C-Cubing(StarArray) — closed, with closed pruning.
    CCubingStarArray,
}

impl Algorithm {
    /// Every algorithm, in presentation order.
    pub const ALL: [Algorithm; 8] = [
        Algorithm::Buc,
        Algorithm::QcDfs,
        Algorithm::Mm,
        Algorithm::CCubingMm,
        Algorithm::Star,
        Algorithm::CCubingStar,
        Algorithm::StarArray,
        Algorithm::CCubingStarArray,
    ];

    /// The three C-Cubing variants (the paper's contribution).
    pub const C_CUBING: [Algorithm; 3] = [
        Algorithm::CCubingMm,
        Algorithm::CCubingStar,
        Algorithm::CCubingStarArray,
    ];

    /// Does this algorithm emit only closed cells?
    pub fn is_closed(self) -> bool {
        matches!(
            self,
            Algorithm::QcDfs
                | Algorithm::CCubingMm
                | Algorithm::CCubingStar
                | Algorithm::CCubingStarArray
        )
    }

    /// Short display name matching the paper's figure legends.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Buc => "BUC",
            Algorithm::QcDfs => "QC-DFS",
            Algorithm::Mm => "MM",
            Algorithm::CCubingMm => "CC(MM)",
            Algorithm::Star => "Star",
            Algorithm::CCubingStar => "CC(Star)",
            Algorithm::StarArray => "StarArray",
            Algorithm::CCubingStarArray => "CC(StarArray)",
        }
    }

    /// Compute the (closed) iceberg cube of `table` at threshold `min_sup`,
    /// emitting into `sink`.
    pub fn run<S: CellSink<()>>(self, table: &Table, min_sup: u64, sink: &mut S) {
        self.run_with(table, min_sup, &CountOnly, sink)
    }

    /// [`Algorithm::run`] carrying the complex-measure accumulators of
    /// `spec` (Section 6.1) on every emitted cell.
    pub fn run_with<M, S>(self, table: &Table, min_sup: u64, spec: &M, sink: &mut S)
    where
        M: MeasureSpec,
        S: CellSink<M::Acc>,
    {
        match self {
            Algorithm::Buc => ccube_baselines::buc_with(table, min_sup, spec, sink),
            Algorithm::QcDfs => ccube_baselines::qc_dfs_with(table, min_sup, spec, sink),
            Algorithm::Mm => {
                ccube_mm::mm_cube_with(table, min_sup, ccube_mm::MmConfig::default(), spec, sink)
            }
            Algorithm::CCubingMm => ccube_mm::c_cubing_mm_with(
                table,
                min_sup,
                ccube_mm::MmConfig::default(),
                spec,
                sink,
            ),
            Algorithm::Star => ccube_star::star_cube_with(table, min_sup, spec, sink),
            Algorithm::CCubingStar => ccube_star::c_cubing_star_with(table, min_sup, spec, sink),
            Algorithm::StarArray => ccube_star::star_array_cube_with(table, min_sup, spec, sink),
            Algorithm::CCubingStarArray => {
                ccube_star::c_cubing_star_array_with(table, min_sup, spec, sink)
            }
        }
    }

    /// Compute only the cells binding the table's first `bound` group-by
    /// dimensions, which must be constant over the table (a shard of a
    /// first-dimension partition). For the iceberg hosts this dispatches to
    /// the dedicated `*_bound` entry points, skipping the starred-prefix
    /// cells entirely; the closed algorithms need no special entry point —
    /// a cell starring a constant dimension is non-closed and is never
    /// emitted — so they run unchanged.
    pub fn run_bound<S: CellSink<()>>(
        self,
        table: &Table,
        bound: usize,
        min_sup: u64,
        sink: &mut S,
    ) {
        self.run_bound_with(table, bound, min_sup, &CountOnly, sink)
    }

    /// [`Algorithm::run_bound`] carrying the measures of `spec`.
    pub fn run_bound_with<M, S>(
        self,
        table: &Table,
        bound: usize,
        min_sup: u64,
        spec: &M,
        sink: &mut S,
    ) where
        M: MeasureSpec,
        S: CellSink<M::Acc>,
    {
        match self {
            Algorithm::Buc => ccube_baselines::buc_bound_with(table, bound, min_sup, spec, sink),
            Algorithm::Mm => ccube_mm::mm_cube_bound_with(
                table,
                bound,
                min_sup,
                ccube_mm::MmConfig::default(),
                spec,
                sink,
            ),
            Algorithm::Star => ccube_star::star_cube_bound_with(table, bound, min_sup, spec, sink),
            Algorithm::StarArray => {
                ccube_star::star_array_cube_bound_with(table, bound, min_sup, spec, sink)
            }
            // Closed algorithms: zero redundancy already (see above).
            Algorithm::QcDfs
            | Algorithm::CCubingMm
            | Algorithm::CCubingStar
            | Algorithm::CCubingStarArray => self.run_with(table, min_sup, spec, sink),
        }
    }

    /// Compute the same (closed) iceberg cube partition-parallel on
    /// `threads` worker threads (`0` = one per CPU), emitting the exact
    /// sequential result set into `sink` in a thread-count-independent
    /// order. See [`ccube_engine`] for the sharding and shard-boundary
    /// closedness reconciliation.
    ///
    /// ```
    /// use c_cubing::prelude::*;
    ///
    /// let table = TableBuilder::new(4)
    ///     .row(&[0, 0, 0, 0])
    ///     .row(&[0, 0, 0, 2])
    ///     .row(&[0, 1, 1, 1])
    ///     .build()
    ///     .unwrap();
    /// let mut par = CollectSink::default();
    /// Algorithm::CCubingStar.run_parallel(&table, 2, 4, &mut par);
    /// let mut seq = CollectSink::default();
    /// Algorithm::CCubingStar.run(&table, 2, &mut seq);
    /// assert_eq!(par.counts(), seq.counts());
    /// ```
    pub fn run_parallel<S: CellSink<()>>(
        self,
        table: &Table,
        min_sup: u64,
        threads: usize,
        sink: &mut S,
    ) {
        self.run_with_config(table, min_sup, &EngineConfig::with_threads(threads), sink)
    }

    /// [`Algorithm::run_parallel`] carrying the complex-measure accumulators
    /// of `spec` on every emitted cell (the engine threads them through its
    /// shard batches and merges them in the same deterministic order).
    pub fn run_parallel_with<M, S>(
        self,
        table: &Table,
        min_sup: u64,
        threads: usize,
        spec: &M,
        sink: &mut S,
    ) where
        M: MeasureSpec + Sync,
        M::Acc: Send,
        S: CellSink<M::Acc>,
    {
        self.run_with_config_with(
            table,
            min_sup,
            &EngineConfig::with_threads(threads),
            spec,
            sink,
        )
    }

    /// [`Algorithm::run_parallel`] with full engine configuration (thread
    /// count, sharding [`ccube_core::order::DimOrdering`], split threshold).
    pub fn run_with_config<S: CellSink<()>>(
        self,
        table: &Table,
        min_sup: u64,
        config: &EngineConfig,
        sink: &mut S,
    ) {
        self.run_with_config_with(table, min_sup, config, &CountOnly, sink)
    }

    /// [`Algorithm::run_with_config`] returning the engine's scheduling and
    /// peak-buffered-bytes counters ([`EngineStats`]) alongside the output —
    /// the observability hook the `parallel` benchmark records in
    /// `BENCH_parallel.json`.
    pub fn run_with_config_stats<S: CellSink<()>>(
        self,
        table: &Table,
        min_sup: u64,
        config: &EngineConfig,
        sink: &mut S,
    ) -> EngineStats {
        ccube_engine::run_partitioned_stats(
            table,
            min_sup,
            config,
            self.is_closed(),
            |shard, bound, m, out| self.run_bound(shard, bound, m, out),
            sink,
        )
    }

    /// [`Algorithm::run_with_config`] carrying the measures of `spec`.
    pub fn run_with_config_with<M, S>(
        self,
        table: &Table,
        min_sup: u64,
        config: &EngineConfig,
        spec: &M,
        sink: &mut S,
    ) where
        M: MeasureSpec + Sync,
        M::Acc: Send,
        S: CellSink<M::Acc>,
    {
        ccube_engine::run_partitioned_with(
            table,
            min_sup,
            config,
            self.is_closed(),
            spec,
            |shard: &Table, bound: usize, m: u64, out: &mut ShardedSink<'_, M::Acc>| {
                self.run_bound_with(shard, bound, m, spec, out)
            },
            sink,
        )
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Algorithm {
    type Err = String;

    fn from_str(s: &str) -> Result<Algorithm, String> {
        match s.to_ascii_lowercase().as_str() {
            "buc" => Ok(Algorithm::Buc),
            "qcdfs" | "qc-dfs" => Ok(Algorithm::QcDfs),
            "mm" => Ok(Algorithm::Mm),
            "ccmm" | "cc(mm)" | "c-cubing(mm)" => Ok(Algorithm::CCubingMm),
            "star" => Ok(Algorithm::Star),
            "ccstar" | "cc(star)" | "c-cubing(star)" => Ok(Algorithm::CCubingStar),
            "stararray" => Ok(Algorithm::StarArray),
            "ccstararray" | "cc(stararray)" | "c-cubing(stararray)" => {
                Ok(Algorithm::CCubingStarArray)
            }
            other => Err(format!("unknown algorithm `{other}`")),
        }
    }
}

/// A coarse description of a closed-cubing workload, used by [`recommend`].
#[derive(Clone, Copy, Debug)]
pub struct Workload {
    /// Number of tuples.
    pub tuples: u64,
    /// Iceberg threshold.
    pub min_sup: u64,
    /// Typical dimension cardinality.
    pub cardinality: u32,
    /// Estimated data dependence `R` (0 = independent; see
    /// [`ccube_data::rules::RuleSet::dependence`]).
    pub dependence: f64,
}

/// Pick a closed cubing algorithm for a workload, following the decision
/// surface of Section 5 (Figs 8–15):
///
/// * the Star family wins while `min_sup` is low — closed pruning still has
///   material to prune; the switching point grows with the data dependence
///   `R` (high dependence keeps closed pruning profitable longer);
/// * past the switching point, iceberg pruning dominates and `C-Cubing(MM)`
///   wins;
/// * within the Star family, low cardinality favours `C-Cubing(Star)`
///   (multiway aggregation), high cardinality favours `C-Cubing(StarArray)`
///   (multiway traversal) — the Fig 5 / Fig 10 crossover.
///
/// The thresholds are heuristics fitted to our Fig 15 reproduction; see
/// EXPERIMENTS.md.
pub fn recommend(w: &Workload) -> Algorithm {
    // Switching point: around min_sup ≈ 16 at R = 0 on 400K rows in the
    // paper's Fig 15, scaling with dependence and (weakly) with data size.
    let size_factor = ((w.tuples.max(1) as f64) / 400_000.0).max(0.1);
    let switch = 16.0 * (1.0 + w.dependence * w.dependence) * size_factor.sqrt();
    if (w.min_sup as f64) > switch {
        Algorithm::CCubingMm
    } else if w.cardinality > 300 {
        Algorithm::CCubingStarArray
    } else {
        Algorithm::CCubingStar
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccube_core::sink::CollectSink;
    use ccube_core::TableBuilder;

    #[test]
    fn dispatch_runs_every_algorithm() {
        let t = TableBuilder::new(3)
            .row(&[0, 0, 0])
            .row(&[0, 1, 0])
            .row(&[1, 1, 1])
            .build()
            .unwrap();
        for algo in Algorithm::ALL {
            let mut sink = CollectSink::default();
            algo.run(&t, 1, &mut sink);
            assert!(!sink.is_empty(), "{algo} produced no cells");
            assert_eq!(sink.duplicates, 0, "{algo} duplicated cells");
        }
    }

    #[test]
    fn closed_flags() {
        assert!(Algorithm::CCubingStar.is_closed());
        assert!(Algorithm::QcDfs.is_closed());
        assert!(!Algorithm::Buc.is_closed());
        assert!(!Algorithm::StarArray.is_closed());
    }

    #[test]
    fn parse_names() {
        assert_eq!(
            "cc(star)".parse::<Algorithm>().unwrap(),
            Algorithm::CCubingStar
        );
        assert_eq!("BUC".parse::<Algorithm>().unwrap(), Algorithm::Buc);
        assert!("nope".parse::<Algorithm>().is_err());
    }

    #[test]
    fn recommend_follows_fig15_shape() {
        // Low min_sup, low cardinality -> CC(Star).
        let w = Workload {
            tuples: 400_000,
            min_sup: 2,
            cardinality: 20,
            dependence: 0.0,
        };
        assert_eq!(recommend(&w), Algorithm::CCubingStar);
        // Low min_sup, high cardinality -> CC(StarArray).
        let w = Workload {
            tuples: 400_000,
            min_sup: 2,
            cardinality: 2000,
            dependence: 0.0,
        };
        assert_eq!(recommend(&w), Algorithm::CCubingStarArray);
        // High min_sup, independent data -> CC(MM).
        let w = Workload {
            tuples: 400_000,
            min_sup: 256,
            cardinality: 20,
            dependence: 0.0,
        };
        assert_eq!(recommend(&w), Algorithm::CCubingMm);
        // Same min_sup but highly dependent data keeps Star ahead.
        let w = Workload {
            tuples: 400_000,
            min_sup: 64,
            cardinality: 20,
            dependence: 3.0,
        };
        assert_eq!(recommend(&w), Algorithm::CCubingStar);
    }
}
