//! # c-cubing — closed iceberg cubes by aggregation-based checking
//!
//! A from-scratch Rust implementation of *C-Cubing: Efficient Computation of
//! Closed Cubes by Aggregation-Based Checking* (Xin, Shao, Han, Liu;
//! ICDE 2006), including every substrate the paper builds on:
//!
//! * the closedness measure — `(Closed Mask, Representative Tuple ID)` —
//!   that turns closedness into an algebraic aggregate
//!   ([`ccube_core::closedness`]);
//! * the three C-Cubing algorithms: [`Algorithm::CCubingMm`],
//!   [`Algorithm::CCubingStar`], [`Algorithm::CCubingStarArray`];
//! * their host iceberg cubers MM-Cubing, Star-Cubing and StarArray, plus
//!   the BUC and QC-DFS baselines;
//! * data generators matching the paper's experiments (Zipf skew,
//!   dependence rules, a weather-dataset surrogate);
//! * closed-rule mining and lossless recovery queries (Section 6.2).
//!
//! ## Quickstart
//!
//! The intended entry point is a [`CubeSession`]: it owns the fact table,
//! caches per-table artifacts (column statistics, the first-dimension
//! partition, the StarArray tuple pool) across queries, and hands out
//! composable [`CubeQuery`] builders with a planner in front:
//!
//! ```
//! use c_cubing::prelude::*;
//!
//! // Table 1 of the paper: (A, B, C, D), measure count, min_sup = 2.
//! let table = TableBuilder::new(4)
//!     .row(&[0, 0, 0, 0]) // a1 b1 c1 d1
//!     .row(&[0, 0, 0, 2]) // a1 b1 c1 d3
//!     .row(&[0, 1, 1, 1]) // a1 b2 c2 d2
//!     .build()
//!     .unwrap();
//!
//! let mut session = CubeSession::new(table).unwrap();
//! let mut sink = CollectSink::default();
//! session.query().min_sup(2).run(&mut sink).unwrap();
//!
//! // Exactly the two closed iceberg cells from Example 1:
//! assert_eq!(sink.len(), 2);
//! assert_eq!(sink.counts()[&Cell::from_values(&[0, 0, 0, STAR])], 2);
//! assert_eq!(sink.counts()[&Cell::from_values(&[0, STAR, STAR, STAR])], 3);
//! ```
//!
//! The [`Algorithm`] methods below ([`Algorithm::run`] and friends) remain
//! as the **low-level path** — one explicit (algorithm, table, threshold)
//! call with no planner, no caching and no subcube machinery. They and the
//! session layer funnel into the same internal execution path.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use ccube_baselines as baselines;
pub use ccube_core as core;
pub use ccube_data as data;
pub use ccube_delta as delta;
pub use ccube_engine as engine;
pub use ccube_mm as mm;
pub use ccube_rules as rules;
pub use ccube_star as star;

pub use ccube_delta::{DeltaStats, MaterializedCube};
pub use ccube_engine::{EngineConfig, EngineStats};

mod session;

pub use session::{
    CacheStats, CellStream, CubeQuery, CubeSession, IngestStats, QueryHandle, QueryPlan,
    QueryStats, StreamPoll,
};

use ccube_core::measure::{CountOnly, MeasureSpec};
use ccube_core::sink::CellSink;
use ccube_core::{CubeError, Table};
use ccube_engine::ShardedSink;

/// Everything needed for typical use.
pub mod prelude {
    pub use crate::{
        recommend, Algorithm, CacheStats, CellStream, CubeQuery, CubeSession, DeltaStats,
        EngineConfig, EngineStats, IngestStats, MaterializedCube, QueryHandle, QueryPlan,
        QueryStats, StreamPoll, TableStats, Workload,
    };
    pub use ccube_core::lifecycle::CancelToken;
    pub use ccube_core::measure::{AllColumns, ColumnStats, CountOnly, MeasureSpec};
    pub use ccube_core::order::DimOrdering;
    pub use ccube_core::sink::{
        CellBatch, CellSink, CollectSink, CountingSink, FnSink, NullSink, SizeSink, WriterSink,
    };
    pub use ccube_core::CubeError;
    pub use ccube_core::{Cell, ClosedInfo, DimMask, Table, TableBuilder, TupleId, STAR};
    pub use ccube_data::{RuleSet, SyntheticSpec, WeatherSpec};
    pub use ccube_rules::{mine_rules, ClosedCube};
}

/// All cubing algorithms in the workspace, runnable through one interface.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// BUC (iceberg baseline).
    Buc,
    /// QC-DFS (closed baseline; raw-data-based checking).
    QcDfs,
    /// MM-Cubing (iceberg).
    Mm,
    /// C-Cubing(MM) — closed, aggregation-based checking.
    CCubingMm,
    /// Star-Cubing (iceberg).
    Star,
    /// C-Cubing(Star) — closed, with closed pruning.
    CCubingStar,
    /// StarArray (iceberg; multiway traversal).
    StarArray,
    /// C-Cubing(StarArray) — closed, with closed pruning.
    CCubingStarArray,
}

impl Algorithm {
    /// Every algorithm, in presentation order.
    pub const ALL: [Algorithm; 8] = [
        Algorithm::Buc,
        Algorithm::QcDfs,
        Algorithm::Mm,
        Algorithm::CCubingMm,
        Algorithm::Star,
        Algorithm::CCubingStar,
        Algorithm::StarArray,
        Algorithm::CCubingStarArray,
    ];

    /// The three C-Cubing variants (the paper's contribution).
    pub const C_CUBING: [Algorithm; 3] = [
        Algorithm::CCubingMm,
        Algorithm::CCubingStar,
        Algorithm::CCubingStarArray,
    ];

    /// Does this algorithm emit only closed cells?
    pub fn is_closed(self) -> bool {
        matches!(
            self,
            Algorithm::QcDfs
                | Algorithm::CCubingMm
                | Algorithm::CCubingStar
                | Algorithm::CCubingStarArray
        )
    }

    /// The variant of this algorithm's family with the requested closedness:
    /// each iceberg host maps to its aggregation-based-checking counterpart
    /// (MM ↔ CC(MM), Star ↔ CC(Star), StarArray ↔ CC(StarArray)) and the
    /// recursion-baseline pair maps BUC ↔ QC-DFS. This is how the query
    /// planner keeps `closed(bool)` orthogonal to `algorithm(a)`.
    pub fn with_closed(self, closed: bool) -> Algorithm {
        match (self, closed) {
            (Algorithm::Buc | Algorithm::QcDfs, true) => Algorithm::QcDfs,
            (Algorithm::Buc | Algorithm::QcDfs, false) => Algorithm::Buc,
            (Algorithm::Mm | Algorithm::CCubingMm, true) => Algorithm::CCubingMm,
            (Algorithm::Mm | Algorithm::CCubingMm, false) => Algorithm::Mm,
            (Algorithm::Star | Algorithm::CCubingStar, true) => Algorithm::CCubingStar,
            (Algorithm::Star | Algorithm::CCubingStar, false) => Algorithm::Star,
            (Algorithm::StarArray | Algorithm::CCubingStarArray, true) => {
                Algorithm::CCubingStarArray
            }
            (Algorithm::StarArray | Algorithm::CCubingStarArray, false) => Algorithm::StarArray,
        }
    }

    /// The single dispatch table of the facade: run this algorithm over
    /// `table` with its first `bound` group-by dimensions pre-bound
    /// (`bound = 0` is the plain unbound run — the `*_bound` entry points
    /// are exactly the unbound entries there). Every public `run*` method
    /// and the session/query layer funnels through here; no other match on
    /// `self` performs algorithm dispatch.
    fn dispatch_bound<M, S>(self, table: &Table, bound: usize, min_sup: u64, spec: &M, sink: &mut S)
    where
        M: MeasureSpec,
        S: CellSink<M::Acc>,
    {
        match self {
            Algorithm::Buc => ccube_baselines::buc_bound_with(table, bound, min_sup, spec, sink),
            Algorithm::QcDfs => ccube_baselines::qc_dfs_with(table, min_sup, spec, sink),
            Algorithm::Mm => ccube_mm::mm_cube_bound_with(
                table,
                bound,
                min_sup,
                ccube_mm::MmConfig::default(),
                spec,
                sink,
            ),
            Algorithm::CCubingMm => ccube_mm::c_cubing_mm_with(
                table,
                min_sup,
                ccube_mm::MmConfig::default(),
                spec,
                sink,
            ),
            Algorithm::Star => ccube_star::star_cube_bound_with(table, bound, min_sup, spec, sink),
            Algorithm::CCubingStar => ccube_star::c_cubing_star_with(table, min_sup, spec, sink),
            Algorithm::StarArray => {
                ccube_star::star_array_cube_bound_with(table, bound, min_sup, spec, sink)
            }
            Algorithm::CCubingStarArray => {
                ccube_star::c_cubing_star_array_with(table, min_sup, spec, sink)
            }
        }
    }

    /// Internal uniform execution path (`CubeRequest`): one entry the
    /// `run*` shims and the [`CubeQuery`] terminals all reduce to. `None`
    /// engine config means a plain sequential run (empty [`EngineStats`]);
    /// `Some` routes through the partition-parallel engine. Both paths share
    /// the engine's failure surface: misuse, ambient-token trips
    /// (cancel/deadline/budget), and contained panics all surface as typed
    /// [`CubeError`]s.
    pub(crate) fn execute_request<M, S>(
        self,
        req: &CubeRequest<'_>,
        spec: &M,
        sink: &mut S,
    ) -> Result<EngineStats, CubeError>
    where
        M: MeasureSpec + Sync,
        M::Acc: Send,
        S: CellSink<M::Acc>,
    {
        match &req.engine {
            None => {
                if req.min_sup < 1 {
                    return Err(CubeError::ZeroMinSup);
                }
                run_guarded(|| self.dispatch_bound(req.table, 0, req.min_sup, spec, sink))?;
                Ok(EngineStats::default())
            }
            Some(config) => ccube_engine::run_partitioned_warm_with_stats(
                req.table,
                req.min_sup,
                config,
                self.is_closed(),
                spec,
                |shard: &Table, bound: usize, m: u64, out: &mut ShardedSink<'_, M::Acc>| {
                    self.dispatch_bound(shard, bound, m, spec, out)
                },
                sink,
                req.warm.as_ref(),
            ),
        }
    }

    /// Short display name matching the paper's figure legends.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Buc => "BUC",
            Algorithm::QcDfs => "QC-DFS",
            Algorithm::Mm => "MM",
            Algorithm::CCubingMm => "CC(MM)",
            Algorithm::Star => "Star",
            Algorithm::CCubingStar => "CC(Star)",
            Algorithm::StarArray => "StarArray",
            Algorithm::CCubingStarArray => "CC(StarArray)",
        }
    }

    /// Compute the (closed) iceberg cube of `table` at threshold `min_sup`,
    /// emitting into `sink`.
    pub fn run<S: CellSink<()>>(self, table: &Table, min_sup: u64, sink: &mut S) {
        self.run_with(table, min_sup, &CountOnly, sink)
    }

    /// [`Algorithm::run`] carrying the complex-measure accumulators of
    /// `spec` (Section 6.1) on every emitted cell.
    pub fn run_with<M, S>(self, table: &Table, min_sup: u64, spec: &M, sink: &mut S)
    where
        M: MeasureSpec,
        S: CellSink<M::Acc>,
    {
        self.dispatch_bound(table, 0, min_sup, spec, sink)
    }

    /// Compute only the cells binding the table's first `bound` group-by
    /// dimensions, which must be constant over the table (a shard of a
    /// first-dimension partition). For the iceberg hosts this dispatches to
    /// the dedicated `*_bound` entry points, skipping the starred-prefix
    /// cells entirely; the closed algorithms need no special entry point —
    /// a cell starring a constant dimension is non-closed and is never
    /// emitted — so they run unchanged.
    pub fn run_bound<S: CellSink<()>>(
        self,
        table: &Table,
        bound: usize,
        min_sup: u64,
        sink: &mut S,
    ) {
        self.run_bound_with(table, bound, min_sup, &CountOnly, sink)
    }

    /// [`Algorithm::run_bound`] carrying the measures of `spec`.
    pub fn run_bound_with<M, S>(
        self,
        table: &Table,
        bound: usize,
        min_sup: u64,
        spec: &M,
        sink: &mut S,
    ) where
        M: MeasureSpec,
        S: CellSink<M::Acc>,
    {
        self.dispatch_bound(table, bound, min_sup, spec, sink)
    }

    /// Compute the same (closed) iceberg cube partition-parallel on
    /// `threads` worker threads (`0` = one per CPU), emitting the exact
    /// sequential result set into `sink` in a thread-count-independent
    /// order. See [`ccube_engine`] for the sharding and shard-boundary
    /// closedness reconciliation, and for the error semantics (misuse,
    /// ambient cancellation, contained panics).
    ///
    /// ```
    /// use c_cubing::prelude::*;
    ///
    /// let table = TableBuilder::new(4)
    ///     .row(&[0, 0, 0, 0])
    ///     .row(&[0, 0, 0, 2])
    ///     .row(&[0, 1, 1, 1])
    ///     .build()
    ///     .unwrap();
    /// let mut par = CollectSink::default();
    /// Algorithm::CCubingStar.run_parallel(&table, 2, 4, &mut par).unwrap();
    /// let mut seq = CollectSink::default();
    /// Algorithm::CCubingStar.run(&table, 2, &mut seq);
    /// assert_eq!(par.counts(), seq.counts());
    /// ```
    pub fn run_parallel<S: CellSink<()>>(
        self,
        table: &Table,
        min_sup: u64,
        threads: usize,
        sink: &mut S,
    ) -> Result<(), CubeError> {
        self.run_with_config(table, min_sup, &EngineConfig::with_threads(threads), sink)
    }

    /// [`Algorithm::run_parallel`] carrying the complex-measure accumulators
    /// of `spec` on every emitted cell (the engine threads them through its
    /// shard batches and merges them in the same deterministic order).
    pub fn run_parallel_with<M, S>(
        self,
        table: &Table,
        min_sup: u64,
        threads: usize,
        spec: &M,
        sink: &mut S,
    ) -> Result<(), CubeError>
    where
        M: MeasureSpec + Sync,
        M::Acc: Send,
        S: CellSink<M::Acc>,
    {
        self.run_with_config_with(
            table,
            min_sup,
            &EngineConfig::with_threads(threads),
            spec,
            sink,
        )
    }

    /// [`Algorithm::run_parallel`] with full engine configuration (thread
    /// count, sharding [`ccube_core::order::DimOrdering`], split threshold).
    pub fn run_with_config<S: CellSink<()>>(
        self,
        table: &Table,
        min_sup: u64,
        config: &EngineConfig,
        sink: &mut S,
    ) -> Result<(), CubeError> {
        self.run_with_config_with(table, min_sup, config, &CountOnly, sink)
    }

    /// [`Algorithm::run_with_config`] returning the engine's scheduling and
    /// peak-buffered-bytes counters ([`EngineStats`]) alongside the output —
    /// the observability hook the `parallel` benchmark records in
    /// `BENCH_parallel.json`.
    pub fn run_with_config_stats<S: CellSink<()>>(
        self,
        table: &Table,
        min_sup: u64,
        config: &EngineConfig,
        sink: &mut S,
    ) -> Result<EngineStats, CubeError> {
        self.execute_request(
            &CubeRequest {
                table,
                min_sup,
                engine: Some(*config),
                warm: None,
            },
            &CountOnly,
            sink,
        )
    }

    /// [`Algorithm::run_with_config`] carrying the measures of `spec`.
    pub fn run_with_config_with<M, S>(
        self,
        table: &Table,
        min_sup: u64,
        config: &EngineConfig,
        spec: &M,
        sink: &mut S,
    ) -> Result<(), CubeError>
    where
        M: MeasureSpec + Sync,
        M::Acc: Send,
        S: CellSink<M::Acc>,
    {
        self.execute_request(
            &CubeRequest {
                table,
                min_sup,
                engine: Some(*config),
                warm: None,
            },
            spec,
            sink,
        )
        .map(|_| ())
    }
}

/// Run a sequential cube computation with the engine's failure surface:
/// checks the ambient token before and after, contains panics into
/// [`CubeError::WorkerPanicked`] (tripping the token so every observer
/// agrees on the outcome), and reports a token trip as the run's error.
pub(crate) fn run_guarded<R>(f: impl FnOnce() -> R) -> Result<R, CubeError> {
    let token = ccube_core::lifecycle::current();
    if let Some(t) = &token {
        t.check()?;
    }
    let result = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(result) => result,
        Err(payload) => {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_string());
            let err = CubeError::WorkerPanicked { message };
            if let Some(t) = &token {
                t.trip(err.clone());
            }
            return Err(err);
        }
    };
    if let Some(t) = &token {
        t.check()?;
    }
    Ok(result)
}

/// The internal uniform execution request: every public `run*` shim and the
/// [`CubeQuery`] terminals reduce to one of these plus
/// [`Algorithm::execute_request`]. (The table here is the *resolved* target
/// — for subcube queries, the already-selected/projected subtable.)
pub(crate) struct CubeRequest<'a> {
    pub(crate) table: &'a Table,
    pub(crate) min_sup: u64,
    /// `None` = plain sequential run; `Some` = partition-parallel engine.
    pub(crate) engine: Option<EngineConfig>,
    /// Session-cached sharding artifacts (permutation + level-0 partition)
    /// for warm engine runs; `None` derives both cold.
    pub(crate) warm: Option<ccube_engine::WarmStart<'a>>,
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Algorithm {
    type Err = String;

    fn from_str(s: &str) -> Result<Algorithm, String> {
        match s.to_ascii_lowercase().as_str() {
            "buc" => Ok(Algorithm::Buc),
            "qcdfs" | "qc-dfs" => Ok(Algorithm::QcDfs),
            "mm" => Ok(Algorithm::Mm),
            "ccmm" | "cc(mm)" | "c-cubing(mm)" => Ok(Algorithm::CCubingMm),
            "star" => Ok(Algorithm::Star),
            "ccstar" | "cc(star)" | "c-cubing(star)" => Ok(Algorithm::CCubingStar),
            "stararray" => Ok(Algorithm::StarArray),
            "ccstararray" | "cc(stararray)" | "c-cubing(stararray)" => {
                Ok(Algorithm::CCubingStarArray)
            }
            other => Err(format!("unknown algorithm `{other}`")),
        }
    }
}

/// Measured per-table statistics feeding the [`recommend`] planner (and the
/// [`CubeSession`] cache): observed cardinalities and skew per dimension
/// plus an estimated data dependence, all derived from the actual data
/// rather than hand-filled. [`Workload`] remains as the coarse hand-filled
/// convenience constructor ([`Workload::stats`]).
#[derive(Clone, Debug, PartialEq)]
pub struct TableStats {
    /// Number of tuples measured.
    pub tuples: u64,
    /// Observed distinct-value count per dimension (≤ the declared
    /// cardinality when values are sparse).
    pub cardinalities: Vec<u32>,
    /// Per-dimension skew estimate: `ln(max_freq / mean_freq) / ln(distinct)`
    /// — 0 for uniform dimensions, rising toward the Zipf exponent for
    /// power-law ones.
    pub skews: Vec<f64>,
    /// Estimated data dependence `R` (0 = independent): mean over adjacent
    /// dimension pairs of `-ln(observed distinct pairs / expected distinct
    /// pairs under independence)`, clamped to `[0, 4]`. Dependence shrinks
    /// the set of value combinations that actually occur, which is exactly
    /// what keeps closed pruning profitable (Figs 12–15).
    pub dependence: f64,
}

impl TableStats {
    /// Measure `table`: one frequency pass per dimension plus one hashed
    /// pair-counting pass per adjacent dimension pair (sampled at most
    /// [`TableStats::SAMPLE_ROWS`] rows). `O(rows × dims)` overall — this is
    /// the per-table setup a [`CubeSession`] pays once instead of per query.
    pub fn measure(table: &Table) -> TableStats {
        StatsState::new(table).stats()
    }

    /// Row cap for the dependence-estimation pair scans.
    pub const SAMPLE_ROWS: usize = 65_536;

    /// Representative dimension cardinality (median of the observed ones) —
    /// the Fig 5 / Fig 10 crossover input of [`recommend`].
    pub fn typical_cardinality(&self) -> u32 {
        let mut sorted = self.cardinalities.clone();
        sorted.sort_unstable();
        sorted.get(sorted.len() / 2).copied().unwrap_or(1)
    }

    /// Mean per-dimension skew estimate.
    pub fn mean_skew(&self) -> f64 {
        if self.skews.is_empty() {
            0.0
        } else {
            self.skews.iter().sum::<f64>() / self.skews.len() as f64
        }
    }

    /// Pick a sharding [`DimOrdering`](ccube_core::order::DimOrdering) for
    /// the parallel engine from these statistics, following Section 5.5:
    /// with skewed dimensions the entropy order beats plain cardinality
    /// (a high-cardinality but heavily skewed dimension partitions badly),
    /// while on near-uniform data the two orders coincide and the cheaper
    /// cardinality sort suffices. A [`CubeSession`] derives this once,
    /// caches the resulting permutation plus its level-0 partition, and
    /// hands both to the engine so warm queries skip the per-query scans.
    pub fn recommend_ordering(&self) -> ccube_core::order::DimOrdering {
        if self.mean_skew() > 0.05 {
            ccube_core::order::DimOrdering::EntropyDesc
        } else {
            ccube_core::order::DimOrdering::CardinalityDesc
        }
    }
}

/// The raw accumulators behind [`TableStats`], kept so a [`CubeSession`]
/// can **extend** its statistics over an appended batch instead of
/// re-scanning the whole table: per-dimension frequency vectors (grown as
/// new values appear) plus the sampled pair-distinct sets feeding the
/// dependence estimate. Because the dependence sample is a row prefix and
/// appends only add rows at the end, `extend` + [`StatsState::stats`] is
/// exactly equal to a cold [`TableStats::measure`] of the grown table.
#[derive(Clone, Debug)]
pub(crate) struct StatsState {
    rows: usize,
    freq: Vec<Vec<u64>>,
    pair_seen: Vec<ccube_core::fxhash::FxHashSet<u64>>,
    sampled: usize,
}

impl StatsState {
    /// Scan `table` from scratch (`O(rows × dims)`, the once-per-session
    /// setup cost).
    pub(crate) fn new(table: &Table) -> StatsState {
        let dims = table.dims();
        let pairs = if dims < 2 { 0 } else { (dims - 1).min(4) };
        let mut state = StatsState {
            rows: 0,
            freq: vec![Vec::new(); dims],
            pair_seen: vec![Default::default(); pairs],
            sampled: 0,
        };
        state.extend(table, 0);
        state
    }

    /// Fold rows `from_row..table.rows()` into the accumulators. `from_row`
    /// must be the row count of the previous scan (the session guarantees
    /// continuity).
    pub(crate) fn extend(&mut self, table: &Table, from_row: usize) {
        debug_assert_eq!(self.rows, from_row, "stats continuity broken");
        for (d, freq) in self.freq.iter_mut().enumerate() {
            let col = table.col(d);
            for t in from_row..table.rows() {
                let v = col.get(t) as usize;
                if v >= freq.len() {
                    freq.resize(v + 1, 0);
                }
                freq[v] += 1;
            }
        }
        for t in from_row..table.rows().min(TableStats::SAMPLE_ROWS) {
            for (d, seen) in self.pair_seen.iter_mut().enumerate() {
                let (a, b) = (table.col(d), table.col(d + 1));
                seen.insert((u64::from(a.get(t)) << 32) | u64::from(b.get(t)));
            }
        }
        self.sampled = table.rows().min(TableStats::SAMPLE_ROWS);
        self.rows = table.rows();
    }

    /// Derive the [`TableStats`] the accumulated state describes.
    pub(crate) fn stats(&self) -> TableStats {
        let n = self.rows;
        let mut cardinalities = Vec::with_capacity(self.freq.len());
        let mut skews = Vec::with_capacity(self.freq.len());
        for freq in &self.freq {
            let distinct = freq.iter().filter(|&&f| f > 0).count().max(1) as u32;
            let max_f = freq.iter().copied().max().unwrap_or(0).max(1) as f64;
            let mean_f = (n as f64 / distinct as f64).max(1.0);
            let skew = if distinct > 1 {
                (max_f / mean_f).ln() / (distinct as f64).ln()
            } else {
                0.0
            };
            cardinalities.push(distinct);
            skews.push(skew.max(0.0));
        }
        TableStats {
            tuples: n as u64,
            dependence: self.dependence(&cardinalities),
            cardinalities,
            skews,
        }
    }

    fn dependence(&self, cards: &[u32]) -> f64 {
        if self.rows < 2 || self.pair_seen.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        for (d, seen) in self.pair_seen.iter().enumerate() {
            // Expected distinct pairs under independence, capped by both the
            // domain size and the sample size (the occupancy approximation
            // `m(1 - e^{-n/m})` of the coupon-collector curve).
            let m = (cards[d] as f64) * (cards[d + 1] as f64);
            let expected = (m * (1.0 - (-(self.sampled as f64) / m).exp())).max(1.0);
            let ratio = (seen.len() as f64 / expected).clamp(1e-6, 1.0);
            total += -ratio.ln();
        }
        (total / self.pair_seen.len() as f64).clamp(0.0, 4.0)
    }
}

/// A coarse hand-filled description of a closed-cubing workload — the
/// convenience constructor for [`TableStats`] when no table is at hand to
/// [`TableStats::measure`] (capacity planning, what-if advisories).
#[derive(Clone, Copy, Debug)]
pub struct Workload {
    /// Number of tuples.
    pub tuples: u64,
    /// Iceberg threshold.
    pub min_sup: u64,
    /// Typical dimension cardinality.
    pub cardinality: u32,
    /// Estimated data dependence `R` (0 = independent; see
    /// [`ccube_data::rules::RuleSet::dependence`]).
    pub dependence: f64,
}

impl Workload {
    /// Synthesize the [`TableStats`] this workload describes (pass the
    /// result plus [`Workload::min_sup`] to [`recommend`]).
    pub fn stats(&self) -> TableStats {
        TableStats {
            tuples: self.tuples,
            cardinalities: vec![self.cardinality],
            skews: vec![0.0],
            dependence: self.dependence,
        }
    }
}

/// Pick a closed cubing algorithm for measured table statistics and an
/// iceberg threshold, following the decision surface of Section 5
/// (Figs 8–15):
///
/// * the Star family wins while `min_sup` is low — closed pruning still has
///   material to prune; the switching point grows with the data dependence
///   `R` (high dependence keeps closed pruning profitable longer);
/// * past the switching point, iceberg pruning dominates and `C-Cubing(MM)`
///   wins;
/// * within the Star family, low cardinality favours `C-Cubing(Star)`
///   (multiway aggregation), high cardinality favours `C-Cubing(StarArray)`
///   (multiway traversal) — the Fig 5 / Fig 10 crossover.
///
/// `stats` is normally [`TableStats::measure`]d from the real table (a
/// [`CubeSession`] caches it and auto-plans with it); [`Workload::stats`]
/// synthesizes one from a hand-filled description. The thresholds are
/// heuristics fitted to our Fig 15 reproduction; see EXPERIMENTS.md.
pub fn recommend(stats: &TableStats, min_sup: u64) -> Algorithm {
    // Switching point: around min_sup ≈ 16 at R = 0 on 400K rows in the
    // paper's Fig 15, scaling with dependence and (weakly) with data size.
    let size_factor = ((stats.tuples.max(1) as f64) / 400_000.0).max(0.1);
    let switch = 16.0 * (1.0 + stats.dependence * stats.dependence) * size_factor.sqrt();
    if (min_sup as f64) > switch {
        Algorithm::CCubingMm
    } else if stats.typical_cardinality() > 300 {
        Algorithm::CCubingStarArray
    } else {
        Algorithm::CCubingStar
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccube_core::sink::CollectSink;
    use ccube_core::TableBuilder;

    #[test]
    fn dispatch_runs_every_algorithm() {
        let t = TableBuilder::new(3)
            .row(&[0, 0, 0])
            .row(&[0, 1, 0])
            .row(&[1, 1, 1])
            .build()
            .unwrap();
        for algo in Algorithm::ALL {
            let mut sink = CollectSink::default();
            algo.run(&t, 1, &mut sink);
            assert!(!sink.is_empty(), "{algo} produced no cells");
            assert_eq!(sink.duplicates, 0, "{algo} duplicated cells");
        }
    }

    #[test]
    fn closed_flags() {
        assert!(Algorithm::CCubingStar.is_closed());
        assert!(Algorithm::QcDfs.is_closed());
        assert!(!Algorithm::Buc.is_closed());
        assert!(!Algorithm::StarArray.is_closed());
    }

    #[test]
    fn parse_names() {
        assert_eq!(
            "cc(star)".parse::<Algorithm>().unwrap(),
            Algorithm::CCubingStar
        );
        assert_eq!("BUC".parse::<Algorithm>().unwrap(), Algorithm::Buc);
        assert!("nope".parse::<Algorithm>().is_err());
    }

    #[test]
    fn recommend_follows_fig15_shape() {
        // Low min_sup, low cardinality -> CC(Star).
        let w = Workload {
            tuples: 400_000,
            min_sup: 2,
            cardinality: 20,
            dependence: 0.0,
        };
        assert_eq!(recommend(&w.stats(), w.min_sup), Algorithm::CCubingStar);
        // Low min_sup, high cardinality -> CC(StarArray).
        let w = Workload {
            tuples: 400_000,
            min_sup: 2,
            cardinality: 2000,
            dependence: 0.0,
        };
        assert_eq!(
            recommend(&w.stats(), w.min_sup),
            Algorithm::CCubingStarArray
        );
        // High min_sup, independent data -> CC(MM).
        let w = Workload {
            tuples: 400_000,
            min_sup: 256,
            cardinality: 20,
            dependence: 0.0,
        };
        assert_eq!(recommend(&w.stats(), w.min_sup), Algorithm::CCubingMm);
        // Same min_sup but highly dependent data keeps Star ahead.
        let w = Workload {
            tuples: 400_000,
            min_sup: 64,
            cardinality: 20,
            dependence: 3.0,
        };
        assert_eq!(recommend(&w.stats(), w.min_sup), Algorithm::CCubingStar);
    }

    #[test]
    fn with_closed_maps_within_families() {
        for algo in Algorithm::ALL {
            assert!(algo.with_closed(true).is_closed(), "{algo}");
            assert!(!algo.with_closed(false).is_closed(), "{algo}");
            // Idempotent within the family.
            assert_eq!(algo.with_closed(algo.is_closed()), algo, "{algo}");
        }
        assert_eq!(Algorithm::Buc.with_closed(true), Algorithm::QcDfs);
        assert_eq!(Algorithm::CCubingStar.with_closed(false), Algorithm::Star);
    }

    #[test]
    fn measured_stats_follow_the_data() {
        use ccube_data::{RuleSet, SyntheticSpec};
        // Uniform independent data: near-zero skew and dependence.
        let flat = SyntheticSpec::uniform(4000, 4, 20, 0.0, 5).generate();
        let s = TableStats::measure(&flat);
        assert_eq!(s.tuples, 4000);
        assert!(s.cardinalities.iter().all(|&c| c <= 20));
        assert!(s.mean_skew() < 0.25, "uniform skew {}", s.mean_skew());
        assert!(s.dependence < 0.5, "independent dep {}", s.dependence);
        // Skewed data: higher measured skew.
        let skewed = SyntheticSpec::uniform(4000, 4, 20, 2.0, 5).generate();
        let sk = TableStats::measure(&skewed);
        assert!(sk.mean_skew() > s.mean_skew());
        // Rule-dependent data: higher measured dependence.
        let cards = vec![20u32; 4];
        let dep = SyntheticSpec {
            tuples: 4000,
            cards: cards.clone(),
            skews: vec![0.0; 4],
            seed: 5,
            rules: Some(RuleSet::with_dependence(&cards, 3.0, 9)),
        }
        .generate();
        let sd = TableStats::measure(&dep);
        assert!(
            sd.dependence > s.dependence,
            "dependent {} vs independent {}",
            sd.dependence,
            s.dependence
        );
    }
}
