//! Closed cubing over a synthetic retail fact table, with complex measures.
//!
//! The motivating OLAP scenario: a `(store, product, segment, week, promo)`
//! fact table with a `revenue` measure. We compute the *closed* iceberg cube
//! — the lossless compression of the full iceberg cube — carrying
//! `sum/min/max/avg(revenue)` along per Lemma 1 / Section 6.1 (closedness is
//! checked on `count`; covered cells would have identical measures anyway).
//!
//! ```sh
//! cargo run --release --example sales_analysis
//! ```

use c_cubing::prelude::*;
use ccube_mm::{c_cubing_mm_with, mm_cube_with, MmConfig};

fn main() {
    // ~50K sales facts: store (50, mildly skewed), product (200, Zipf —
    // bestsellers dominate), customer segment (8), week (52), promo (3).
    // Business rules create real dependence — e.g. certain products are
    // only ever sold under one promo type — which is what closed cubing
    // compresses away.
    let cards = vec![50, 200, 8, 52, 3];
    let spec = SyntheticSpec {
        tuples: 50_000,
        cards: cards.clone(),
        skews: vec![0.5, 1.2, 0.3, 0.0, 0.8],
        seed: 2024,
        rules: Some(RuleSet::with_dependence(&cards, 2.0, 7)),
    };
    let table = spec.generate_with_measure("revenue");
    let names = ["store", "product", "segment", "week", "promo"];
    let min_sup = 25;

    println!(
        "Fact table: {} rows x {} dims, measure `revenue`; min_sup = {min_sup}\n",
        table.rows(),
        table.dims()
    );

    // Closed iceberg cube with revenue statistics riding along.
    let spec_measure = ColumnStats { column: 0 };
    let mut closed = CollectSink::default();
    c_cubing_mm_with(
        &table,
        min_sup,
        MmConfig::default(),
        &spec_measure,
        &mut closed,
    );

    // The plain iceberg cube, for the compression comparison.
    let mut iceberg = CollectSink::default();
    mm_cube_with(
        &table,
        min_sup,
        MmConfig::default(),
        &spec_measure,
        &mut iceberg,
    );

    println!(
        "iceberg cells: {}   closed cells: {}   compression: {:.1}%",
        iceberg.len(),
        closed.len(),
        100.0 * closed.len() as f64 / (iceberg.len() as f64).max(1.0)
    );

    // Top revenue group-bys among closed cells with at least 2 bound dims.
    let mut top: Vec<(&Cell, u64, f64)> = closed
        .cells
        .iter()
        .filter(|(c, _)| c.bound_dims() >= 2)
        .map(|(c, (n, agg))| (c, *n, agg.sum))
        .collect();
    top.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
    println!("\nTop 5 closed group-bys (>= 2 bound dims) by total revenue:");
    for (cell, count, revenue) in top.iter().take(5) {
        let desc: Vec<String> = (0..cell.dims())
            .filter(|&d| !cell.is_star(d))
            .map(|d| format!("{}={}", names[d], cell.value(d)))
            .collect();
        println!(
            "  {:<40} count={:<6} revenue={:>10.0} avg={:>7.2}",
            desc.join(", "),
            count,
            revenue,
            revenue / *count as f64
        );
    }

    // Lossless recovery demo: any iceberg cell's count is answerable from
    // the closed cube alone.
    let cube = ClosedCube::new(
        table.dims(),
        min_sup,
        closed
            .cells
            .iter()
            .map(|(c, (n, _))| (c.clone(), *n))
            .collect(),
    );
    let probe = iceberg
        .cells
        .keys()
        .next()
        .expect("iceberg cube is non-empty");
    println!(
        "\nrecovery check: iceberg cell {probe} count {} -> recovered {:?} from {} closed cells",
        iceberg.cells[probe].0,
        cube.query(probe),
        cube.len()
    );
}
