//! Closed cubing over a synthetic retail fact table, with complex measures,
//! subcube slicing and streaming — the session API end to end.
//!
//! The motivating OLAP scenario: a `(store, product, segment, week, promo)`
//! fact table with a `revenue` measure. One [`CubeSession`] answers a series
//! of questions over it: the *closed* iceberg cube with
//! `sum/min/max/avg(revenue)` riding along (Lemma 1 / Section 6.1), the
//! compression ratio against the plain iceberg cube, a promo *slice*, and a
//! streamed top-revenue report.
//!
//! ```sh
//! cargo run --release --example sales_analysis
//! ```

use c_cubing::prelude::*;

fn main() {
    // ~50K sales facts: store (50, mildly skewed), product (200, Zipf —
    // bestsellers dominate), customer segment (8), week (52), promo (3).
    // Business rules create real dependence — e.g. certain products are
    // only ever sold under one promo type — which is what closed cubing
    // compresses away.
    let cards = vec![50, 200, 8, 52, 3];
    let spec = SyntheticSpec {
        tuples: 50_000,
        cards: cards.clone(),
        skews: vec![0.5, 1.2, 0.3, 0.0, 0.8],
        seed: 2024,
        rules: Some(RuleSet::with_dependence(&cards, 2.0, 7)),
    };
    let table = spec.generate_with_measure("revenue");
    let names = ["store", "product", "segment", "week", "promo"];
    let min_sup = 25;

    println!(
        "Fact table: {} rows x {} dims, measure `revenue`; min_sup = {min_sup}\n",
        table.rows(),
        table.dims()
    );

    // One session answers every question below; stats, the first-dimension
    // partition and (on the first StarArray query) the tuple pool are
    // measured once and reused.
    let mut session = CubeSession::new(table).expect("ordinary table");
    println!(
        "measured stats: typical cardinality {}, mean skew {:.2}, dependence {:.2}; \
         planner picks {}\n",
        session.stats().typical_cardinality(),
        session.stats().mean_skew(),
        session.stats().dependence,
        session.recommend(min_sup)
    );

    // Closed iceberg cube with revenue statistics riding along.
    let revenue = ColumnStats { column: 0 };
    let mut closed = CollectSink::default();
    session
        .query()
        .min_sup(min_sup)
        .measure(revenue)
        .run(&mut closed)
        .unwrap();

    // The plain iceberg cube, for the compression comparison: same builder,
    // `closed(false)` — the planner swaps in the family's iceberg host.
    let iceberg = session
        .query()
        .min_sup(min_sup)
        .closed(false)
        .stats()
        .unwrap();

    println!(
        "iceberg cells: {}   closed cells: {}   compression: {:.1}%",
        iceberg.cells,
        closed.len(),
        100.0 * closed.len() as f64 / (iceberg.cells as f64).max(1.0)
    );

    // Subcube question: what does the cube of promo-2 sales look like?
    // `slice` selects the tuples; closedness is relative to the slice, so
    // every closed cell binds promo = 2.
    let promo_slice = session
        .query()
        .min_sup(min_sup)
        .slice(4, 2)
        .stats()
        .unwrap();
    println!(
        "promo=2 slice: {} closed cells (Σ cell counts {})\n",
        promo_slice.cells, promo_slice.count_sum
    );

    // Top revenue group-bys among closed cells with at least 2 bound dims.
    let mut top: Vec<(&Cell, u64, f64)> = closed
        .cells
        .iter()
        .filter(|(c, _)| c.bound_dims() >= 2)
        .map(|(c, (n, agg))| (c, *n, agg.sum))
        .collect();
    top.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
    println!("Top 5 closed group-bys (>= 2 bound dims) by total revenue:");
    for (cell, count, revenue) in top.iter().take(5) {
        let desc: Vec<String> = (0..cell.dims())
            .filter(|&d| !cell.is_star(d))
            .map(|d| format!("{}={}", names[d], cell.value(d)))
            .collect();
        println!(
            "  {:<40} count={:<6} revenue={:>10.0} avg={:>7.2}",
            desc.join(", "),
            count,
            revenue,
            revenue / *count as f64
        );
    }

    // Streaming consumption: serving code pulls cells without implementing
    // a CellSink; the bounded channel back-pressures the cubing run.
    let streamed = session
        .query()
        .min_sup(min_sup)
        .measure(revenue)
        .stream()
        .unwrap()
        .take(3)
        .count();
    println!("\nstreamed the first {streamed} cells, then hung up (remainder discarded)");

    // Lossless recovery demo: any iceberg cell's count is answerable from
    // the closed cube alone.
    let cube = ClosedCube::new(
        session.table().dims(),
        min_sup,
        closed
            .cells
            .iter()
            .map(|(c, (n, _))| (c.clone(), *n))
            .collect(),
    );
    let probe = closed
        .cells
        .keys()
        .next()
        .expect("closed cube is non-empty");
    println!(
        "recovery check: cell {probe} count {} -> recovered {:?} from {} closed cells",
        closed.cells[probe].0,
        cube.query(probe),
        cube.len()
    );
    println!(
        "session cache after all queries: {:?}",
        session.cache_stats()
    );
}
