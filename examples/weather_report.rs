//! The paper's real-data scenario on the weather surrogate: algorithm
//! comparison, dimension ordering, and closed-rule mining.
//!
//! ```sh
//! cargo run --release --example weather_report
//! ```

use c_cubing::prelude::*;
use std::time::Instant;

fn time_algo(algo: Algorithm, table: &Table, min_sup: u64) -> (f64, u64) {
    let mut sink = CountingSink::default();
    let start = Instant::now();
    algo.run(table, min_sup, &mut sink);
    (start.elapsed().as_secs_f64(), sink.cells)
}

fn main() {
    let table = WeatherSpec::new(100_000, 7).generate_dims(8);
    println!(
        "Weather surrogate: {} reports, {} dims, cards {:?}\n",
        table.rows(),
        table.dims(),
        table.cards()
    );

    // 1. Closed iceberg cubing with every algorithm (Fig 11 in miniature).
    let min_sup = 8;
    println!("closed iceberg cube at min_sup = {min_sup}:");
    for algo in [
        Algorithm::QcDfs,
        Algorithm::CCubingMm,
        Algorithm::CCubingStar,
        Algorithm::CCubingStarArray,
    ] {
        let (secs, cells) = time_algo(algo, &table, min_sup);
        println!(
            "  {:<16} {:>8.3}s   {cells} closed cells",
            algo.name(),
            secs
        );
    }

    // 2. What does the advisor say, given statistics measured from the
    // actual surrogate data?
    let stats = TableStats::measure(&table);
    println!(
        "\nmeasured dependence {:.2}, typical cardinality {} -> advisor recommends: {}",
        stats.dependence,
        stats.typical_cardinality(),
        recommend(&stats, min_sup)
    );

    // 3. Dimension ordering (Fig 18 in miniature) for the tree-based cuber.
    println!("\nC-Cubing(StarArray) under dimension orderings (min_sup = {min_sup}):");
    for ordering in [
        DimOrdering::Original,
        DimOrdering::CardinalityDesc,
        DimOrdering::EntropyDesc,
    ] {
        let (permuted, _) = ordering.apply(&table);
        let (secs, cells) = time_algo(Algorithm::CCubingStarArray, &permuted, min_sup);
        println!("  {ordering:<16?} {secs:>8.3}s   {cells} cells");
    }

    // 4. Closed rules (Section 6.2): the compact dependence summary.
    let small = WeatherSpec::new(20_000, 7).generate_dims(5);
    let cube = ClosedCube::collect(small.dims(), 10, |sink| {
        Algorithm::CCubingStarArray.run(&small, 10, sink)
    });
    let (rules, stats) = mine_rules(&cube);
    println!(
        "\nclosed rules on a 20K x 5-dim slice (min_sup 10): {} rules for {} closed cells ({:.1}%)",
        stats.rules,
        stats.closed_cells,
        100.0 * stats.compaction_ratio()
    );
    for rule in rules.iter().take(5) {
        println!("  {rule}");
    }
}
