//! Fig 15 in miniature: measure the CC(MM) / CC(Star) frontier over the
//! (dependence, min_sup) grid and compare it with the planner's choice —
//! driven through a [`CubeSession`] per table, so the advisor input is the
//! session's *measured* [`TableStats`] (real cardinalities, skew and
//! estimated dependence), not a hand-filled [`Workload`].
//!
//! ```sh
//! cargo run --release --example algorithm_advisor
//! ```

use c_cubing::prelude::*;
use std::time::Instant;

fn main() {
    let tuples = 40_000;
    let cards = vec![20u32; 8];
    let min_sups = [1u64, 4, 16, 64];
    let dependences = [0.0, 1.0, 2.0, 3.0];

    println!("measured winner (CC(MM) vs CC(Star)) and planner prediction");
    println!("grid: T={tuples}, D=8, C=20, S=0  (planner input: measured TableStats)\n");
    print!("{:>6} |", "R\\M");
    for m in min_sups {
        print!(" {m:>20} |");
    }
    println!();

    let mut agree = 0;
    let mut total = 0;
    for r in dependences {
        print!("{r:>6} |");
        for m in min_sups {
            let rules = RuleSet::with_dependence(&cards, r, 99);
            let table = SyntheticSpec {
                tuples,
                cards: cards.clone(),
                skews: vec![0.0; 8],
                seed: 1,
                rules: Some(rules),
            }
            .generate();
            let mut session = CubeSession::new(table).expect("ordinary table");

            let mut time = |algo: Algorithm| {
                let start = Instant::now();
                session.query().min_sup(m).algorithm(algo).stats().unwrap();
                start.elapsed().as_secs_f64()
            };
            let mm = time(Algorithm::CCubingMm);
            let star = time(Algorithm::CCubingStar);
            let winner = if mm <= star {
                Algorithm::CCubingMm
            } else {
                Algorithm::CCubingStar
            };

            // The planner's pick from the *measured* statistics (the same
            // call `session.query().min_sup(m).plan()` resolves through).
            let predicted = session.recommend(m);
            total += 1;
            if winner == predicted {
                agree += 1;
            }
            let marker = if winner == predicted { "=" } else { "!" };
            print!(" {:>10}/{:<8}{marker} |", winner.name(), predicted.name());
        }
        println!();
    }
    println!(
        "\nmeasured/predicted agreement: {agree}/{total} \
         (expected shape: CC(Star) holds the low-min_sup, high-R corner)"
    );

    // The hand-filled Workload path still exists for what-if advisories
    // with no table at hand:
    let what_if = Workload {
        tuples: 400_000,
        min_sup: 2,
        cardinality: 2000,
        dependence: 0.0,
    };
    println!(
        "what-if (no table): T=400K, M=2, C=2000, R=0 -> {}",
        recommend(&what_if.stats(), what_if.min_sup)
    );
}
