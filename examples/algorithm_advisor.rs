//! Fig 15 in miniature: measure the CC(MM) / CC(Star) frontier over the
//! (dependence, min_sup) grid and compare it with the static advisor.
//!
//! ```sh
//! cargo run --release --example algorithm_advisor
//! ```

use c_cubing::prelude::*;
use std::time::Instant;

fn main() {
    let tuples = 40_000;
    let cards = vec![20u32; 8];
    let min_sups = [1u64, 4, 16, 64];
    let dependences = [0.0, 1.0, 2.0, 3.0];

    println!("measured winner (CC(MM) vs CC(Star)) and advisor prediction");
    println!("grid: T={tuples}, D=8, C=20, S=0\n");
    print!("{:>6} |", "R\\M");
    for m in min_sups {
        print!(" {m:>20} |");
    }
    println!();

    let mut agree = 0;
    let mut total = 0;
    for r in dependences {
        print!("{r:>6} |");
        for m in min_sups {
            let rules = RuleSet::with_dependence(&cards, r, 99);
            let table = SyntheticSpec {
                tuples,
                cards: cards.clone(),
                skews: vec![0.0; 8],
                seed: 1,
                rules: Some(rules),
            }
            .generate();

            let time = |algo: Algorithm| {
                let mut sink = CountingSink::default();
                let start = Instant::now();
                algo.run(&table, m, &mut sink);
                start.elapsed().as_secs_f64()
            };
            let mm = time(Algorithm::CCubingMm);
            let star = time(Algorithm::CCubingStar);
            let winner = if mm <= star {
                Algorithm::CCubingMm
            } else {
                Algorithm::CCubingStar
            };

            let predicted = recommend(&Workload {
                tuples: tuples as u64,
                min_sup: m,
                cardinality: 20,
                dependence: r,
            });
            total += 1;
            if winner == predicted {
                agree += 1;
            }
            let marker = if winner == predicted { "=" } else { "!" };
            print!(" {:>10}/{:<8}{marker} |", winner.name(), predicted.name());
        }
        println!();
    }
    println!(
        "\nmeasured/predicted agreement: {agree}/{total} \
         (expected shape: CC(Star) holds the low-min_sup, high-R corner)"
    );
}
