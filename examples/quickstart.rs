//! Quickstart: the paper's Example 1 end to end, through the session API.
//!
//! Builds Table 1 (four dimensions A–D, three tuples), opens a
//! [`CubeSession`] over it, and computes the closed iceberg cube at
//! `min_sup = 2` — first with the planner picking the algorithm, then
//! explicitly with each of the three C-Cubing algorithms and the QC-DFS
//! baseline, and finally as a pull-based stream.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use c_cubing::prelude::*;

fn main() {
    // Encoded Table 1: a1=0, b1=0/b2=1, c1=0/c2=1, d1=0/d2=1/d3=2.
    let table = TableBuilder::new(4)
        .names(vec!["A", "B", "C", "D"])
        .row(&[0, 0, 0, 0]) // a1 b1 c1 d1
        .row(&[0, 0, 0, 2]) // a1 b1 c1 d3
        .row(&[0, 1, 1, 1]) // a1 b2 c2 d2
        .build()
        .expect("valid table");

    println!(
        "Input (Table 1 of the paper): {} tuples, {} dims\n",
        table.rows(),
        table.dims()
    );

    // One session per fact table: stats + partition are measured once here,
    // and every query below reuses them.
    let mut session = CubeSession::new(table).expect("ordinary table");

    // The planner-backed default: a closed iceberg cube, algorithm chosen
    // from the measured table statistics.
    let plan = session.query().min_sup(2).plan();
    println!(
        "planner picks {} for this table at min_sup = 2\n",
        plan.algorithm
    );

    for algo in [
        Algorithm::CCubingMm,
        Algorithm::CCubingStar,
        Algorithm::CCubingStarArray,
        Algorithm::QcDfs,
    ] {
        let mut sink = CollectSink::default();
        session
            .query()
            .min_sup(2)
            .algorithm(algo)
            .run(&mut sink)
            .unwrap();
        let mut cells: Vec<(Cell, u64)> = sink.counts().into_iter().collect();
        cells.sort();
        println!("{algo} -> closed iceberg cells (count >= 2):");
        for (cell, count) in &cells {
            println!("  {cell} : {count}");
        }
        println!();
    }

    // The same result as a pull-based stream — no CellSink required.
    println!("streamed:");
    for (cell, count, ()) in session.query().min_sup(2).stream().unwrap() {
        println!("  {cell} : {count}");
    }
    println!();

    // The closedness measure by hand: check cell (a1, *, c1, *) the way the
    // algorithms do — one mask intersection, no data re-scan.
    let table = session.table();
    let mut info = ClosedInfo::for_tuple(table, 0);
    info.merge_tuple(table, 1); // tuples {t1, t2} form the group of (a1,*,c1,*)
    let cell = Cell::from_values(&[0, STAR, 0, STAR]);
    println!(
        "closedness of {cell}: closed mask {:?} ∩ all mask {:?} = {:?} -> {}",
        info.mask,
        cell.all_mask(),
        info.violation(cell.all_mask()),
        if info.is_closed(cell.all_mask()) {
            "closed"
        } else {
            "covered (not closed)"
        }
    );
}
